// Energy-management policies: GreenGPU and every baseline the paper
// evaluates against.
//
//  * best-performance  — peak frequencies, all work on the GPU (the Rodinia
//    default configuration; baseline of Fig. 6 and Fig. 8).
//  * static pair       — fixed (core, memory) frequency levels (Fig. 1
//    sweeps).
//  * static division   — fixed CPU share at peak clocks (Fig. 2 sweep and
//    the oracle search of Section VII-B).
//  * Frequency-scaling — WMA GPU scaler + ondemand CPU, all work on GPU.
//  * Division          — dynamic division, peak clocks.
//  * GreenGPU          — both tiers (the holistic solution).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>

#include "src/greengpu/cpu_governor.h"
#include "src/greengpu/model_dividers.h"
#include "src/greengpu/params.h"

namespace gg::greengpu {

struct Policy {
  std::string name;
  /// Enable the tier-1 dynamic division controller.
  bool division{false};
  /// Division algorithm used when `division` is true (kStep is the paper's).
  DividerKind divider{DividerKind::kStep};
  /// Enable the tier-2 WMA GPU frequency scaler.
  bool gpu_scaling{false};
  /// CPU frequency governor (kNone leaves the CPU at peak; the paper's
  /// GreenGPU uses ondemand, and Section IV invites swapping in others).
  CpuGovernorKind cpu_governor{CpuGovernorKind::kNone};
  /// CPU share when `division` is false.
  double fixed_ratio{0.0};
  /// Fixed GPU (core, mem) levels when `gpu_scaling` is false; when unset,
  /// peak levels are enforced.
  std::optional<std::pair<std::size_t, std::size_t>> fixed_gpu_levels;
  /// Controller parameters (used by whichever tiers are enabled).
  GreenGpuParams params{};

  [[nodiscard]] static Policy best_performance() {
    Policy p;
    p.name = "best-performance";
    return p;
  }

  [[nodiscard]] static Policy static_pair(std::size_t core_level, std::size_t mem_level) {
    Policy p;
    p.name = "static-pair";
    p.fixed_gpu_levels = {core_level, mem_level};
    return p;
  }

  [[nodiscard]] static Policy static_division(double ratio) {
    Policy p;
    p.name = "static-division";
    p.fixed_ratio = ratio;
    return p;
  }

  [[nodiscard]] static Policy scaling_only(GreenGpuParams params = {}) {
    Policy p;
    p.name = "frequency-scaling";
    p.gpu_scaling = true;
    p.cpu_governor = CpuGovernorKind::kOndemand;
    p.params = params;
    return p;
  }

  [[nodiscard]] static Policy division_only(GreenGpuParams params = {}) {
    Policy p;
    p.name = "division";
    p.division = true;
    p.params = params;
    return p;
  }

  /// Division with a non-default algorithm (Section V-B's "sophisticated
  /// global optimal algorithms" integration point).
  [[nodiscard]] static Policy division_with(DividerKind kind, GreenGpuParams params = {}) {
    Policy p;
    p.name = "division-" + std::string(greengpu::to_string(kind));
    p.division = true;
    p.divider = kind;
    p.params = params;
    return p;
  }

  [[nodiscard]] static Policy green_gpu(GreenGpuParams params = {}) {
    Policy p;
    p.name = "greengpu";
    p.division = true;
    p.gpu_scaling = true;
    p.cpu_governor = CpuGovernorKind::kOndemand;
    p.params = params;
    return p;
  }
};

}  // namespace gg::greengpu
