// Experiment runner for multi-GPU configurations.
//
// Extends the Section VI application structure to N GPUs: one stream per
// device, a share vector divided across CPU + GPUs by a `MultiDivider`, and
// (optionally) one WMA frequency-scaling daemon per card plus a CPU
// governor — GreenGPU scaled out.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/greengpu/cpu_governor.h"
#include "src/greengpu/multi_division.h"
#include "src/greengpu/params.h"
#include "src/greengpu/telemetry.h"
#include "src/sim/fault.h"
#include "src/workloads/workload.h"

namespace gg::greengpu {

struct MultiPolicy {
  std::string name{"multi-greengpu"};
  /// Enable dynamic division (else `fixed_shares` is used).
  bool division{true};
  MultiDividerKind divider{MultiDividerKind::kStep};
  /// Per-card WMA frequency scaling.
  bool gpu_scaling{false};
  CpuGovernorKind cpu_governor{CpuGovernorKind::kNone};
  /// Used when `division` is false; empty means "all work on GPU 0".
  std::vector<double> fixed_shares;
  GreenGpuParams params{};

  [[nodiscard]] static MultiPolicy baseline() {
    MultiPolicy p;
    p.name = "multi-baseline";
    p.division = false;
    return p;
  }

  [[nodiscard]] static MultiPolicy division_only(
      MultiDividerKind kind = MultiDividerKind::kStep) {
    MultiPolicy p;
    p.name = "multi-division";
    p.division = true;
    p.divider = kind;
    return p;
  }

  [[nodiscard]] static MultiPolicy green_gpu(
      MultiDividerKind kind = MultiDividerKind::kStep) {
    MultiPolicy p;
    p.name = "multi-greengpu";
    p.division = true;
    p.divider = kind;
    p.gpu_scaling = true;
    p.cpu_governor = CpuGovernorKind::kOndemand;
    return p;
  }
};

struct MultiIterationRecord {
  std::size_t index{0};
  std::vector<double> shares;       // per slot (CPU first)
  std::vector<Seconds> slot_times;  // per slot completion times
  Seconds duration{0.0};
  Joules total_energy{0.0};
  /// Fault-layer events logged during this iteration (0 without injector).
  std::size_t fault_events{0};
  /// The iteration's slot times were distorted by faults.
  bool degraded{false};
};

struct MultiExperimentResult {
  std::string workload;
  std::string policy;
  std::size_t gpu_count{0};
  Seconds exec_time{0.0};
  Joules cpu_energy{0.0};
  Joules gpu_energy{0.0};  // all cards
  std::vector<Joules> per_gpu_energy;
  [[nodiscard]] Joules total_energy() const { return cpu_energy + gpu_energy; }
  std::vector<double> final_shares;
  bool verified{false};
  /// Retained per-record logs (truncated per MultiRunOptions::record; the
  /// *_count fields are exact regardless of retention).
  std::vector<MultiIterationRecord> iterations;
  std::vector<sim::FaultEvent> fault_events;
  std::size_t iteration_count{0};
  std::size_t fault_event_count{0};
  std::size_t degraded_iterations{0};
  std::uint64_t watchdog_trips{0};
};

struct MultiRunOptions {
  std::size_t pool_workers{0};
  bool verify{true};
  bool sync_spin{true};
  /// Fault-injection configuration; see RunOptions::faults.
  sim::FaultConfig faults{};
  /// Retention policy for per-record logs; see RunOptions::record.
  RecordOptions record{};
};

/// Run `workload` on a testbed with `gpu_count` identical GPUs.
[[nodiscard]] MultiExperimentResult run_multi_experiment(workloads::Workload& workload,
                                                         std::size_t gpu_count,
                                                         const MultiPolicy& policy,
                                                         const MultiRunOptions& options = {});

[[nodiscard]] MultiExperimentResult run_multi_experiment(const std::string& workload_name,
                                                         std::size_t gpu_count,
                                                         const MultiPolicy& policy,
                                                         const MultiRunOptions& options = {});

}  // namespace gg::greengpu
