#include "src/greengpu/cpu_governor.h"

#include <stdexcept>

#include "src/greengpu/loss.h"

namespace gg::greengpu {

CpuGovernor::CpuGovernor(sim::Platform& platform, Seconds interval)
    : platform_(&platform), interval_(interval),
      sampler_(platform.cpu(), platform.queue()) {
  if (interval_ <= Seconds{0.0}) {
    throw std::invalid_argument("CpuGovernor: interval must be > 0");
  }
}

GovernorDecision CpuGovernor::step(Seconds now) {
  const double u = sampler_.sample();
  const std::size_t level = decide(u);
  platform_->cpu().set_level(level);
  ++steps_;
  const GovernorDecision d{now, u, level};
  decisions_.push(d);
  return d;
}

void CpuGovernor::attach() {
  detach();
  arm();
}

void CpuGovernor::attach_at(Seconds first_step) {
  detach();
  next_ = platform_->queue().schedule_at(first_step, [this] {
    step(platform_->queue().now());
    arm();
  });
}

namespace {

void save_governor_decision(common::SnapshotWriter& w, const GovernorDecision& d) {
  w.f64(d.time.get());
  w.f64(d.util);
  w.u64(d.level);
}

GovernorDecision load_governor_decision(common::SnapshotReader& r) {
  GovernorDecision d;
  d.time = Seconds{r.f64()};
  d.util = r.f64();
  d.level = static_cast<std::size_t>(r.u64());
  return d;
}

}  // namespace

void CpuGovernor::save(common::SnapshotWriter& w) const {
  sampler_.save(w);
  w.u64(steps_);
  decisions_.save(w, save_governor_decision);
}

void CpuGovernor::load(common::SnapshotReader& r) {
  sampler_.load(r);
  steps_ = r.u64();
  decisions_.load(r, load_governor_decision);
}

void WmaCpuGovernor::save(common::SnapshotWriter& w) const {
  CpuGovernor::save(w);
  table_.save(w);
}

void WmaCpuGovernor::load(common::SnapshotReader& r) {
  CpuGovernor::load(r);
  table_.load(r);
}

void CpuGovernor::arm() {
  next_ = platform_->queue().schedule_in(interval_, [this] {
    step(platform_->queue().now());
    arm();
  });
}

void CpuGovernor::detach() { next_.cancel(); }

std::size_t OndemandGovernor::decide(double util) {
  std::size_t level = current_level();
  if (util > params_.up_threshold) {
    level = 0;  // jump to the highest available frequency
  } else if (util < params_.down_threshold) {
    if (level < table().lowest_level()) ++level;  // next lowest frequency
  }
  return level;
}

std::size_t ConservativeGovernor::decide(double util) {
  std::size_t level = current_level();
  if (util > params_.up_threshold) {
    if (level > 0) --level;  // one step up, never a jump
  } else if (util < params_.down_threshold) {
    if (level < table().lowest_level()) ++level;
  }
  return level;
}

WmaCpuGovernor::WmaCpuGovernor(sim::Platform& platform, Seconds interval, double alpha,
                               double beta, double weight_floor)
    : CpuGovernor(platform, interval),
      alpha_(alpha),
      one_minus_beta_(1.0 - beta),
      weight_floor_(weight_floor),
      umean_(umean_table(platform.cpu().table())),
      table_(platform.cpu().table().levels(), 1),
      scratch_losses_(umean_.size(), 0.0) {}

std::size_t WmaCpuGovernor::decide(double util) {
  // Degenerate 1-D case of Eq. 3: the "memory" dimension has a single level
  // with zero loss, so phi = 1 reduces the total loss to the CPU loss
  // (1.0 * loss is the loss bit-exactly, and the single pre-blended memory
  // entry is 0.0).  Fused update: allocation-free, argmax tracked inline.
  for (std::size_t i = 0; i < umean_.size(); ++i) {
    scratch_losses_[i] = component_loss(util, umean_[i], alpha_);
  }
  static constexpr double kZeroMemLoss[1] = {0.0};
  return table_
      .update_fused(scratch_losses_.data(), kZeroMemLoss, one_minus_beta_, weight_floor_)
      .core;
}

std::string_view to_string(CpuGovernorKind kind) {
  switch (kind) {
    case CpuGovernorKind::kNone: return "none";
    case CpuGovernorKind::kPerformance: return "performance";
    case CpuGovernorKind::kPowersave: return "powersave";
    case CpuGovernorKind::kOndemand: return "ondemand";
    case CpuGovernorKind::kConservative: return "conservative";
    case CpuGovernorKind::kWma: return "wma";
  }
  return "unknown";
}

CpuGovernorKind cpu_governor_from_string(std::string_view name) {
  if (name == "none") return CpuGovernorKind::kNone;
  if (name == "performance") return CpuGovernorKind::kPerformance;
  if (name == "powersave") return CpuGovernorKind::kPowersave;
  if (name == "ondemand") return CpuGovernorKind::kOndemand;
  if (name == "conservative") return CpuGovernorKind::kConservative;
  if (name == "wma") return CpuGovernorKind::kWma;
  throw std::invalid_argument("unknown CPU governor: " + std::string(name));
}

std::unique_ptr<CpuGovernor> make_cpu_governor(CpuGovernorKind kind,
                                               sim::Platform& platform,
                                               const OndemandParams& params) {
  switch (kind) {
    case CpuGovernorKind::kNone:
      return nullptr;
    case CpuGovernorKind::kPerformance:
      return std::make_unique<PerformanceGovernor>(platform, params.interval);
    case CpuGovernorKind::kPowersave:
      return std::make_unique<PowersaveGovernor>(platform, params.interval);
    case CpuGovernorKind::kOndemand:
      return std::make_unique<OndemandGovernor>(platform, params);
    case CpuGovernorKind::kConservative:
      return std::make_unique<ConservativeGovernor>(platform, params);
    case CpuGovernorKind::kWma:
      return std::make_unique<WmaCpuGovernor>(platform, params.interval);
  }
  throw std::invalid_argument("unknown CPU governor kind");
}

}  // namespace gg::greengpu
