#include "src/greengpu/telemetry.h"

#include <stdexcept>
#include <string>

namespace gg::greengpu {

std::string_view to_string(RecordMode mode) {
  switch (mode) {
    case RecordMode::kFull:
      return "full";
    case RecordMode::kRing:
      return "ring";
    case RecordMode::kCounters:
      return "counters";
  }
  return "?";
}

RecordMode record_mode_from_string(std::string_view name) {
  if (name == "full") return RecordMode::kFull;
  if (name == "ring") return RecordMode::kRing;
  if (name == "counters") return RecordMode::kCounters;
  throw std::invalid_argument("unknown record mode: " + std::string(name) +
                              " (expected full|ring|counters)");
}

}  // namespace gg::greengpu
