#include "src/greengpu/recovery.h"

#include <filesystem>
#include <mutex>
#include <utility>

#include "src/common/job_pool.h"
#include "src/common/killpoint.h"
#include "src/common/snapshot.h"
#include "src/greengpu/batch_engine.h"

namespace gg::greengpu {

namespace {

/// Journal magic "GGJL" + its own version, separate from the snapshot frame
/// version (the journal carries raw CRC-framed records, not GGSN frames).
constexpr common::Journal::Format kJournalFormat{/*magic=*/0x4C4A4747u,
                                                /*version=*/1};

/// The scalar fields of an ExperimentResult — everything the campaign
/// reports consume.  Per-record vectors (iterations, traces, decision logs)
/// are intentionally NOT journaled: campaigns run in counters-only
/// retention and their reports never read them.
void save_result(common::SnapshotWriter& w, const ExperimentResult& r) {
  w.str(r.workload);
  w.str(r.policy);
  w.f64(r.exec_time.get());
  w.f64(r.gpu_energy.get());
  w.f64(r.cpu_energy.get());
  w.f64(r.gpu_idle_power.get());
  w.f64(r.cpu_spin_energy.get());
  w.f64(r.cpu_spin_time.get());
  w.f64(r.cpu_credited_spin_time.get());
  w.f64(r.cpu_credited_spin_energy.get());
  w.f64(r.cpu_spin_power_lowest.get());
  w.f64(r.final_ratio);
  w.u64(static_cast<std::uint64_t>(r.convergence_iteration));
  w.b(r.verified);
  w.b(r.verify_skipped);
  w.u64(static_cast<std::uint64_t>(r.iteration_count));
  w.u64(r.scaler_decision_count);
  w.u64(r.governor_decision_count);
  w.u64(static_cast<std::uint64_t>(r.fault_event_count));
  w.u64(r.gpu_frequency_transitions);
  w.u64(static_cast<std::uint64_t>(r.degraded_iterations));
  w.u64(r.watchdog_trips);
}

ExperimentResult load_result(common::SnapshotReader& r) {
  ExperimentResult out;
  out.workload = r.str();
  out.policy = r.str();
  out.exec_time = Seconds{r.f64()};
  out.gpu_energy = Joules{r.f64()};
  out.cpu_energy = Joules{r.f64()};
  out.gpu_idle_power = Watts{r.f64()};
  out.cpu_spin_energy = Joules{r.f64()};
  out.cpu_spin_time = Seconds{r.f64()};
  out.cpu_credited_spin_time = Seconds{r.f64()};
  out.cpu_credited_spin_energy = Joules{r.f64()};
  out.cpu_spin_power_lowest = Watts{r.f64()};
  out.final_ratio = r.f64();
  out.convergence_iteration = static_cast<std::size_t>(r.u64());
  out.verified = r.b();
  out.verify_skipped = r.b();
  out.iteration_count = static_cast<std::size_t>(r.u64());
  out.scaler_decision_count = r.u64();
  out.governor_decision_count = r.u64();
  out.fault_event_count = static_cast<std::size_t>(r.u64());
  out.gpu_frequency_transitions = r.u64();
  out.degraded_iterations = static_cast<std::size_t>(r.u64());
  out.watchdog_trips = r.u64();
  r.expect_done();
  return out;
}

}  // namespace

std::optional<RunCheckpointMeta> read_run_checkpoint_meta(const std::string& path) {
  try {
    common::SnapshotReader r = common::SnapshotReader::from_file(path);
    RunCheckpointMeta meta;
    meta.iteration = r.u64();
    meta.sim_time = r.f64();
    meta.has_scaler = r.b();
    meta.has_divider = r.b();
    return meta;
  } catch (const common::SnapshotError&) {
    return std::nullopt;
  }
}

std::uint64_t CampaignJournal::fingerprint(const CampaignPlan& plan,
                                           const RunOptions& options) {
  common::SnapshotWriter w;
  for (const auto& name : plan.workloads) w.str(name);
  for (const auto& policy : plan.policies) w.str(policy.name);
  // Every option a cell's results depend on.  Host-side knobs that cannot
  // change simulated outcomes (pool_workers, retention mode, checkpoint
  // cadence) are deliberately excluded so resuming with different host
  // settings stays legal.
  w.u64(static_cast<std::uint64_t>(options.max_iterations));
  w.b(options.verify);
  w.b(options.sync_spin);
  w.f64(options.emulation_guard_per_launch.get());
  // The fault-warm-up boundary changes where the injector joins and so the
  // fault schedule; the execution *engine* is deliberately excluded — both
  // engines produce byte-identical results, so a campaign journaled under
  // one may resume under the other.
  w.u64(static_cast<std::uint64_t>(options.faults_active_from));
  const sim::FaultConfig& f = options.faults;
  w.u64(f.seed);
  w.f64(f.util_drop_rate);
  w.f64(f.util_stale_rate);
  w.f64(f.util_corrupt_rate);
  w.f64(f.clock_reject_rate);
  w.f64(f.clock_delay_rate);
  w.f64(f.clock_delay.get());
  w.f64(f.clock_clamp_rate);
  w.f64(f.launch_fail_rate);
  w.f64(f.host_fail_rate);
  w.f64(f.throttle_mtbf.get());
  w.f64(f.throttle_duration.get());
  const auto& payload = w.payload();
  return static_cast<std::uint64_t>(payload.size()) << 32 |
         common::crc32(payload.data(), payload.size());
}

std::vector<CampaignJournal::Entry> CampaignJournal::read(const std::string& path,
                                                          std::uint64_t fingerprint) {
  std::vector<Entry> entries;
  for (auto& record : common::Journal::read(path, kJournalFormat, fingerprint)) {
    try {
      auto reader = common::SnapshotReader::from_payload(
          std::move(record.payload),
          path + " record at byte " + std::to_string(record.offset));
      Entry e;
      e.cell_index = static_cast<std::size_t>(record.tag);
      e.result = load_result(reader);
      entries.push_back(std::move(e));
    } catch (const common::SnapshotError&) {
      // Schema disagreement: trust nothing from here on.  Drop this record
      // and everything after it so the next append starts on a boundary the
      // current schema wrote.
      common::Journal::truncate_to(path, record.offset);
      break;
    }
  }
  return entries;
}

CampaignJournal::CampaignJournal(std::string path, std::uint64_t fingerprint, bool fresh)
    : journal_(std::move(path), kJournalFormat, fingerprint, fresh) {}

void CampaignJournal::append(std::size_t cell_index, const ExperimentResult& result) {
  common::SnapshotWriter w;
  save_result(w, result);
  journal_.append(static_cast<std::uint64_t>(cell_index), w.payload());
}

CampaignResult run_campaign_checkpointed(const CampaignConfig& config,
                                         const CheckpointOptions& ckpt,
                                         const CampaignProgress& progress) {
  if (!ckpt.enabled()) return run_campaign(config, progress);

  const CampaignPlan plan = plan_campaign(config);
  CampaignResult out;
  out.workloads = plan.workloads;
  for (const auto& p : plan.policies) out.policy_names.push_back(p.name);
  const std::size_t policy_count = plan.policies.size();
  const std::size_t total = plan.total();
  out.cells.resize(total);

  std::filesystem::create_directories(ckpt.dir);
  const std::string journal_path = ckpt.dir + "/campaign.journal";
  const std::uint64_t fp = CampaignJournal::fingerprint(plan, config.options);

  std::vector<char> done(total, 0);
  std::size_t completed = 0;
  const bool resuming = ckpt.resume && std::filesystem::exists(journal_path);
  if (resuming) {
    for (auto& entry : CampaignJournal::read(journal_path, fp)) {
      if (entry.cell_index < total && !done[entry.cell_index]) {
        out.cells[entry.cell_index].result = std::move(entry.result);
        done[entry.cell_index] = 1;
        ++completed;
      }
    }
  }
  CampaignJournal journal(journal_path, fp, /*fresh=*/!resuming);

  std::mutex mutex;
  if (config.engine == CampaignEngine::kBatch) {
    // The batch engine publishes each cell through on_done in flat-index
    // order within a row; the journal append is index-tagged, so append
    // order across rows doesn't matter.  The kill-point sits between "cell
    // finished" and "cell journaled", exactly like the scalar path: a kill
    // there loses that cell (and, batched, the not-yet-published rest of
    // its row) and the resume re-runs the pending cells bit-identically.
    BatchCampaignEngine engine(plan, config.options, config.jobs);
    engine.skip_completed(done);
    BatchCampaignEngine::Hooks hooks;
    if (ckpt.every != 0) {
      hooks.customize = [&ckpt](std::size_t i, RunOptions& options) {
        options.checkpoint_every = ckpt.every;
        options.checkpoint_dir = ckpt.dir;
        options.checkpoint_tag = "cell-" + std::to_string(i);
      };
    }
    hooks.on_done = [&](std::size_t i, const ExperimentResult& result) {
      common::killpoint(common::KillPoint::kMidCampaignCell);
      std::lock_guard<std::mutex> lock(mutex);
      journal.append(i, result);
      ++completed;
      if (progress) {
        progress(plan.workloads[i / policy_count],
                 plan.policies[i % policy_count].name, completed, total);
      }
    };
    engine.run(out.cells, hooks);
  } else {
    common::JobPool pool(config.jobs);
    pool.run(total, [&](std::size_t i) {
      if (done[i]) return;
      const std::size_t w = i / policy_count;
      const std::size_t p = i % policy_count;
      RunOptions options = config.options;
      if (options.faults.any_faults()) {
        options.faults.seed = campaign_cell_seed(options.faults.seed, i);
      }
      if (ckpt.every != 0) {
        options.checkpoint_every = ckpt.every;
        options.checkpoint_dir = ckpt.dir;
        options.checkpoint_tag = "cell-" + std::to_string(i);
      }
      ExperimentResult result =
          run_experiment(plan.workloads[w], plan.policies[p], options);
      // The cell finished but is not journaled yet: a kill here loses the
      // work, and the resume re-runs the cell bit-identically.
      common::killpoint(common::KillPoint::kMidCampaignCell);
      std::lock_guard<std::mutex> lock(mutex);
      journal.append(i, result);
      out.cells[i].result = std::move(result);
      ++completed;
      if (progress) {
        progress(plan.workloads[w], plan.policies[p].name, completed, total);
      }
    });
  }

  finalize_campaign_savings(out);
  return out;
}

CampaignResult RecoverySupervisor::run(const CampaignProgress& progress) {
  restarts_ = 0;
  restart_delays_.clear();
  common::ExponentialBackoff backoff(backoff_);
  CheckpointOptions ckpt = ckpt_;
  for (;;) {
    try {
      return run_campaign_checkpointed(config_, ckpt, progress);
    } catch (const common::CrashInjected&) {
      if (restarts_ >= max_restarts_) throw;
      ++restarts_;
      // The planned delay before this retry.  The supervisor never sleeps
      // itself (campaign time is simulated and tests must stay instant);
      // daemon-style callers read restart_delays() and sleep for real.
      restart_delays_.push_back(backoff.next());
      // The journal holds every cell finished before the crash; pick up
      // from there.  (A single-shot kill-point stays quiet on the retry —
      // the "crash was transient" model; a multi-shot arm keeps crashing
      // until its shots or this budget run out — the persistent-fault
      // model.)
      ckpt.resume = true;
    }
  }
}

}  // namespace gg::greengpu
