#include "src/greengpu/recovery.h"

#include <filesystem>
#include <fstream>
#include <mutex>
#include <utility>

#include "src/common/job_pool.h"
#include "src/common/killpoint.h"
#include "src/common/snapshot.h"

namespace gg::greengpu {

namespace {

/// Journal magic "GGJL" + its own version, separate from the snapshot frame
/// version (the journal carries raw CRC-framed records, not GGSN frames).
constexpr std::uint32_t kJournalMagic = 0x4C4A4747u;
constexpr std::uint32_t kJournalVersion = 1;
constexpr std::size_t kJournalHeaderSize = 4 + 4 + 8;
/// Per-record frame: cell index + payload length + payload CRC.
constexpr std::size_t kRecordHeaderSize = 8 + 8 + 4;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = v << 8 | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | p[i];
  return v;
}

/// The scalar fields of an ExperimentResult — everything the campaign
/// reports consume.  Per-record vectors (iterations, traces, decision logs)
/// are intentionally NOT journaled: campaigns run in counters-only
/// retention and their reports never read them.
void save_result(common::SnapshotWriter& w, const ExperimentResult& r) {
  w.str(r.workload);
  w.str(r.policy);
  w.f64(r.exec_time.get());
  w.f64(r.gpu_energy.get());
  w.f64(r.cpu_energy.get());
  w.f64(r.gpu_idle_power.get());
  w.f64(r.cpu_spin_energy.get());
  w.f64(r.cpu_spin_time.get());
  w.f64(r.cpu_credited_spin_time.get());
  w.f64(r.cpu_credited_spin_energy.get());
  w.f64(r.cpu_spin_power_lowest.get());
  w.f64(r.final_ratio);
  w.u64(static_cast<std::uint64_t>(r.convergence_iteration));
  w.b(r.verified);
  w.b(r.verify_skipped);
  w.u64(static_cast<std::uint64_t>(r.iteration_count));
  w.u64(r.scaler_decision_count);
  w.u64(r.governor_decision_count);
  w.u64(static_cast<std::uint64_t>(r.fault_event_count));
  w.u64(r.gpu_frequency_transitions);
  w.u64(static_cast<std::uint64_t>(r.degraded_iterations));
  w.u64(r.watchdog_trips);
}

ExperimentResult load_result(common::SnapshotReader& r) {
  ExperimentResult out;
  out.workload = r.str();
  out.policy = r.str();
  out.exec_time = Seconds{r.f64()};
  out.gpu_energy = Joules{r.f64()};
  out.cpu_energy = Joules{r.f64()};
  out.gpu_idle_power = Watts{r.f64()};
  out.cpu_spin_energy = Joules{r.f64()};
  out.cpu_spin_time = Seconds{r.f64()};
  out.cpu_credited_spin_time = Seconds{r.f64()};
  out.cpu_credited_spin_energy = Joules{r.f64()};
  out.cpu_spin_power_lowest = Watts{r.f64()};
  out.final_ratio = r.f64();
  out.convergence_iteration = static_cast<std::size_t>(r.u64());
  out.verified = r.b();
  out.verify_skipped = r.b();
  out.iteration_count = static_cast<std::size_t>(r.u64());
  out.scaler_decision_count = r.u64();
  out.governor_decision_count = r.u64();
  out.fault_event_count = static_cast<std::size_t>(r.u64());
  out.gpu_frequency_transitions = r.u64();
  out.degraded_iterations = static_cast<std::size_t>(r.u64());
  out.watchdog_trips = r.u64();
  r.expect_done();
  return out;
}

}  // namespace

std::optional<RunCheckpointMeta> read_run_checkpoint_meta(const std::string& path) {
  try {
    common::SnapshotReader r = common::SnapshotReader::from_file(path);
    RunCheckpointMeta meta;
    meta.iteration = r.u64();
    meta.sim_time = r.f64();
    meta.has_scaler = r.b();
    meta.has_divider = r.b();
    return meta;
  } catch (const common::SnapshotError&) {
    return std::nullopt;
  }
}

std::uint64_t CampaignJournal::fingerprint(const CampaignPlan& plan,
                                           const RunOptions& options) {
  common::SnapshotWriter w;
  for (const auto& name : plan.workloads) w.str(name);
  for (const auto& policy : plan.policies) w.str(policy.name);
  // Every option a cell's results depend on.  Host-side knobs that cannot
  // change simulated outcomes (pool_workers, retention mode, checkpoint
  // cadence) are deliberately excluded so resuming with different host
  // settings stays legal.
  w.u64(static_cast<std::uint64_t>(options.max_iterations));
  w.b(options.verify);
  w.b(options.sync_spin);
  w.f64(options.emulation_guard_per_launch.get());
  const sim::FaultConfig& f = options.faults;
  w.u64(f.seed);
  w.f64(f.util_drop_rate);
  w.f64(f.util_stale_rate);
  w.f64(f.util_corrupt_rate);
  w.f64(f.clock_reject_rate);
  w.f64(f.clock_delay_rate);
  w.f64(f.clock_delay.get());
  w.f64(f.clock_clamp_rate);
  w.f64(f.launch_fail_rate);
  w.f64(f.host_fail_rate);
  w.f64(f.throttle_mtbf.get());
  w.f64(f.throttle_duration.get());
  const auto& payload = w.payload();
  return static_cast<std::uint64_t>(payload.size()) << 32 |
         common::crc32(payload.data(), payload.size());
}

std::vector<CampaignJournal::Entry> CampaignJournal::read(const std::string& path,
                                                          std::uint64_t fingerprint) {
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw common::SnapshotError("campaign journal: cannot open " + path);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  if (bytes.size() < kJournalHeaderSize) {
    throw common::SnapshotError("campaign journal: truncated header in " + path);
  }
  if (get_u32(bytes.data()) != kJournalMagic) {
    throw common::SnapshotError("campaign journal: bad magic in " + path);
  }
  const std::uint32_t version = get_u32(bytes.data() + 4);
  if (version != kJournalVersion) {
    throw common::SnapshotError("campaign journal: version " + std::to_string(version) +
                                " unsupported");
  }
  if (get_u64(bytes.data() + 8) != fingerprint) {
    throw common::SnapshotError(
        "campaign journal: configuration fingerprint mismatch — " + path +
        " was written by a different campaign (refusing to mix results)");
  }

  std::vector<Entry> entries;
  std::size_t pos = kJournalHeaderSize;
  std::size_t good_end = pos;
  while (pos + kRecordHeaderSize <= bytes.size()) {
    const std::uint64_t cell = get_u64(bytes.data() + pos);
    const std::uint64_t len = get_u64(bytes.data() + pos + 8);
    const std::uint32_t crc = get_u32(bytes.data() + pos + 16);
    const std::size_t payload_at = pos + kRecordHeaderSize;
    if (payload_at + len > bytes.size()) break;  // torn tail
    if (common::crc32(bytes.data() + payload_at, len) != crc) break;  // torn tail
    try {
      auto reader = common::SnapshotReader::from_payload(std::vector<std::uint8_t>(
          bytes.begin() + static_cast<std::ptrdiff_t>(payload_at),
          bytes.begin() + static_cast<std::ptrdiff_t>(payload_at + len)));
      Entry e;
      e.cell_index = static_cast<std::size_t>(cell);
      e.result = load_result(reader);
      entries.push_back(std::move(e));
    } catch (const common::SnapshotError&) {
      break;  // schema disagreement: trust nothing from here on
    }
    pos = payload_at + len;
    good_end = pos;
  }
  if (good_end < bytes.size()) {
    // Drop the torn tail so the next append starts on a record boundary.
    std::filesystem::resize_file(path, good_end);
  }
  return entries;
}

CampaignJournal::CampaignJournal(std::string path, std::uint64_t fingerprint, bool fresh)
    : path_(std::move(path)) {
  if (fresh || !std::filesystem::exists(path_)) {
    std::string header;
    put_u32(header, kJournalMagic);
    put_u32(header, kJournalVersion);
    put_u64(header, fingerprint);
    // GG_LINT_ALLOW(checkpoint-write): journal header creation; records are
    // CRC-framed and a torn tail is truncated on read, so the append path
    // needs no write-rename.
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw common::SnapshotError("campaign journal: cannot create " + path_);
    }
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.flush();
    if (!out) throw common::SnapshotError("campaign journal: short write to " + path_);
  }
}

void CampaignJournal::append(std::size_t cell_index, const ExperimentResult& result) {
  common::SnapshotWriter w;
  save_result(w, result);
  const auto& payload = w.payload();

  std::string frame;
  frame.reserve(kRecordHeaderSize + payload.size());
  put_u64(frame, static_cast<std::uint64_t>(cell_index));
  put_u64(frame, payload.size());
  put_u32(frame, common::crc32(payload.data(), payload.size()));
  frame.append(reinterpret_cast<const char*>(payload.data()), payload.size());

  // GG_LINT_ALLOW(checkpoint-write): the journal is append-only by design;
  // each record carries its own CRC and read() truncates a torn tail, which
  // gives the same never-see-a-partial-record guarantee as write-rename
  // without rewriting the whole file per cell.
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out) throw common::SnapshotError("campaign journal: cannot open " + path_);
  // Two-flush write with the kill-point in between: an exit-mode kill here
  // leaves exactly the half-written record that read() detects and drops.
  const std::size_t half = frame.size() / 2;
  out.write(frame.data(), static_cast<std::streamsize>(half));
  out.flush();
  common::killpoint(common::KillPoint::kMidCheckpoint);
  out.write(frame.data() + half, static_cast<std::streamsize>(frame.size() - half));
  out.flush();
  if (!out) throw common::SnapshotError("campaign journal: short append to " + path_);
}

CampaignResult run_campaign_checkpointed(const CampaignConfig& config,
                                         const CheckpointOptions& ckpt,
                                         const CampaignProgress& progress) {
  if (!ckpt.enabled()) return run_campaign(config, progress);

  const CampaignPlan plan = plan_campaign(config);
  CampaignResult out;
  out.workloads = plan.workloads;
  for (const auto& p : plan.policies) out.policy_names.push_back(p.name);
  const std::size_t policy_count = plan.policies.size();
  const std::size_t total = plan.total();
  out.cells.resize(total);

  std::filesystem::create_directories(ckpt.dir);
  const std::string journal_path = ckpt.dir + "/campaign.journal";
  const std::uint64_t fp = CampaignJournal::fingerprint(plan, config.options);

  std::vector<char> done(total, 0);
  std::size_t completed = 0;
  const bool resuming = ckpt.resume && std::filesystem::exists(journal_path);
  if (resuming) {
    for (auto& entry : CampaignJournal::read(journal_path, fp)) {
      if (entry.cell_index < total && !done[entry.cell_index]) {
        out.cells[entry.cell_index].result = std::move(entry.result);
        done[entry.cell_index] = 1;
        ++completed;
      }
    }
  }
  CampaignJournal journal(journal_path, fp, /*fresh=*/!resuming);

  std::mutex mutex;
  common::JobPool pool(config.jobs);
  pool.run(total, [&](std::size_t i) {
    if (done[i]) return;
    const std::size_t w = i / policy_count;
    const std::size_t p = i % policy_count;
    RunOptions options = config.options;
    if (options.faults.any_faults()) {
      options.faults.seed = campaign_cell_seed(options.faults.seed, i);
    }
    if (ckpt.every != 0) {
      options.checkpoint_every = ckpt.every;
      options.checkpoint_dir = ckpt.dir;
      options.checkpoint_tag = "cell-" + std::to_string(i);
    }
    ExperimentResult result =
        run_experiment(plan.workloads[w], plan.policies[p], options);
    // The cell finished but is not journaled yet: a kill here loses the
    // work, and the resume re-runs the cell bit-identically.
    common::killpoint(common::KillPoint::kMidCampaignCell);
    std::lock_guard<std::mutex> lock(mutex);
    journal.append(i, result);
    out.cells[i].result = std::move(result);
    ++completed;
    if (progress) {
      progress(plan.workloads[w], plan.policies[p].name, completed, total);
    }
  });

  finalize_campaign_savings(out);
  return out;
}

CampaignResult RecoverySupervisor::run(const CampaignProgress& progress) {
  restarts_ = 0;
  CheckpointOptions ckpt = ckpt_;
  for (;;) {
    try {
      return run_campaign_checkpointed(config_, ckpt, progress);
    } catch (const common::CrashInjected&) {
      if (restarts_ >= max_restarts_) throw;
      ++restarts_;
      // The journal holds every cell finished before the crash; pick up
      // from there.  (The fired kill-point is single-shot, so the retry
      // sails past it — matching the real-world "the crash was transient"
      // supervision model.)
      ckpt.resume = true;
    }
  }
}

}  // namespace gg::greengpu
