#include "src/greengpu/multi_runner.h"

#include <algorithm>
#include <stdexcept>

#include "src/cudalite/api.h"
#include "src/cudalite/nvml.h"
#include "src/cudalite/nvsettings.h"
#include "src/greengpu/runner.h"
#include "src/greengpu/wma_scaler.h"
#include "src/sim/platform.h"
#include "src/workloads/registry.h"

namespace gg::greengpu {

MultiExperimentResult run_multi_experiment(workloads::Workload& workload,
                                           std::size_t gpu_count, const MultiPolicy& policy,
                                           const MultiRunOptions& options) {
  if (gpu_count == 0) throw std::invalid_argument("run_multi_experiment: gpu_count == 0");
  sim::Platform platform(gpu_count);
  cudalite::Runtime rt(platform, options.pool_workers, options.sync_spin);
  const std::size_t slots = gpu_count + 1;

  // Fault layer (strict no-op when every rate is zero).
  sim::FaultInjector* injector = nullptr;
  if (options.faults.any_faults()) {
    injector = &platform.install_faults(options.faults);
  }
  const HardeningParams& hard = policy.params.hardening;
  if (hard.enabled) {
    rt.set_fault_tolerance(
        cudalite::FaultTolerance{hard.max_launch_retries, hard.reroute_failed_side});
  }
  WmaParams wma = policy.params.wma;
  if (hard.enabled) wma.harden = true;

  // Per-card monitoring/actuation + optional scaling daemons.
  std::vector<std::unique_ptr<cudalite::NvmlDevice>> nvml;
  std::vector<std::unique_ptr<cudalite::NvSettings>> settings;
  std::vector<std::unique_ptr<GpuFrequencyScaler>> scalers;
  for (std::size_t g = 0; g < gpu_count; ++g) {
    nvml.push_back(std::make_unique<cudalite::NvmlDevice>(platform, g));
    settings.push_back(std::make_unique<cudalite::NvSettings>(platform, g));
    if (policy.gpu_scaling) {
      scalers.push_back(std::make_unique<GpuFrequencyScaler>(*nvml.back(),
                                                             *settings.back(), wma));
      scalers.back()->set_record(options.record);
      scalers.back()->attach(platform.queue());
    } else {
      settings.back()->set_clock_levels(0, 0);  // best-performance clocks
    }
  }
  std::unique_ptr<CpuGovernor> governor =
      make_cpu_governor(policy.cpu_governor, platform, policy.params.ondemand);
  if (governor) {
    governor->set_record(options.record);
    governor->attach();
  }

  // Division state.
  std::unique_ptr<MultiDivider> divider;
  std::vector<double> shares;
  if (policy.division && workload.divisible()) {
    divider = make_multi_divider(policy.divider, slots);
    shares = divider->shares();
  } else if (!policy.fixed_shares.empty()) {
    if (policy.fixed_shares.size() != slots) {
      throw std::invalid_argument("run_multi_experiment: fixed_shares size mismatch");
    }
    shares = policy.fixed_shares;
  } else {
    shares.assign(slots, 0.0);
    shares[1] = 1.0;  // all work on GPU 0
  }

  MultiExperimentResult result;
  result.workload = std::string(workload.name());
  result.policy = policy.name;
  result.gpu_count = gpu_count;

  workload.setup(rt);
  std::vector<cudalite::Stream> streams;
  streams.reserve(gpu_count);
  for (std::size_t g = 0; g < gpu_count; ++g) {
    rt.set_device(g);
    streams.push_back(rt.create_stream());
  }
  rt.set_device(0);

  const sim::EnergySnapshot run_start = platform.snapshot();

  int watchdog_trips_left = hard.max_watchdog_trips;

  DecisionRecorder<MultiIterationRecord> iteration_log(options.record);

  for (std::size_t iter = 0; iter < workload.iterations(); ++iter) {
    const sim::EnergySnapshot e0 = platform.snapshot();
    const Seconds t0 = platform.now();
    const std::size_t ev0 = injector ? injector->events().size() : 0;
    bool throttled_at_start = false;
    if (injector != nullptr) {
      for (std::size_t g = 0; g < gpu_count; ++g) {
        throttled_at_start = throttled_at_start || injector->throttled(g);
      }
    }

    std::vector<bool> done(slots, false);
    std::vector<Seconds> done_at(slots, t0);
    std::size_t remaining = slots;
    workload.run_iteration_multi(rt, streams, iter, shares, [&](std::size_t slot) {
      if (!done[slot]) {
        done[slot] = true;
        done_at[slot] = platform.now();
        --remaining;
      }
    });
    if (injector != nullptr && hard.watchdog_timeout > Seconds{0.0}) {
      while (remaining != 0) {
        bool fired = false;
        sim::EventHandle wd =
            platform.queue().schedule_in(hard.watchdog_timeout, [&] { fired = true; });
        rt.wait_until([&] { return remaining == 0 || fired; });
        wd.cancel();
        if (remaining == 0) break;
        injector->note(sim::FaultChannel::kHarness, sim::FaultOutcome::kWatchdogTrip);
        ++result.watchdog_trips;
        if (!hard.enabled || --watchdog_trips_left < 0) {
          throw ExperimentAborted("run_multi_experiment: iteration " +
                                  std::to_string(iter) + " stuck — watchdog abort");
        }
      }
    } else {
      rt.wait_until([&] { return remaining == 0; });
    }
    workload.finish_iteration(rt, iter);

    const sim::EnergySnapshot e1 = platform.snapshot();
    MultiIterationRecord rec;
    rec.index = iter;
    rec.shares = shares;
    rec.slot_times.resize(slots);
    for (std::size_t s = 0; s < slots; ++s) rec.slot_times[s] = done_at[s] - t0;
    rec.duration = e1.time - e0.time;
    rec.total_energy = sim::Platform::delta(e0, e1).total();

    if (injector != nullptr) {
      const auto& events = injector->events();
      rec.fault_events = events.size() - ev0;
      rec.degraded = throttled_at_start;
      for (std::size_t i = ev0; i < events.size(); ++i) {
        switch (events[i].outcome) {
          case sim::FaultOutcome::kRerouted:
          case sim::FaultOutcome::kForcedCompletion:
          case sim::FaultOutcome::kRetriesExhausted:
          case sim::FaultOutcome::kWatchdogTrip:
          case sim::FaultOutcome::kThrottleStart:
            rec.degraded = true;
            break;
          default:
            break;
        }
      }
      if (rec.degraded) ++result.degraded_iterations;
    }

    if (divider) {
      // A hardened policy skips the update on a degraded iteration — the
      // slot times are non-informative; the baseline learns from the noise.
      if (!(hard.enabled && rec.degraded)) {
        divider->update(rec.slot_times);
        shares = divider->shares();
      }
    }
    iteration_log.push(rec);
  }

  workload.teardown(rt);

  const sim::EnergySnapshot run_end = platform.snapshot();
  const sim::EnergyDelta total = sim::Platform::delta(run_start, run_end);
  result.exec_time = total.elapsed;
  result.cpu_energy = total.cpu;
  result.gpu_energy = total.gpu;
  result.per_gpu_energy.resize(gpu_count);
  for (std::size_t g = 0; g < gpu_count; ++g) {
    result.per_gpu_energy[g] = run_end.per_gpu[g] - run_start.per_gpu[g];
  }
  result.final_shares = shares;

  result.iteration_count = static_cast<std::size_t>(iteration_log.total());
  result.iterations = iteration_log.take();

  for (auto& s : scalers) s->detach();
  if (governor) governor->detach();
  if (injector != nullptr) {
    const auto& events = injector->events();
    result.fault_event_count = events.size();
    switch (options.record.mode) {
      case RecordMode::kFull:
        result.fault_events = events;
        break;
      case RecordMode::kRing: {
        const std::size_t keep = std::min(events.size(), options.record.ring_capacity);
        result.fault_events.assign(events.end() - static_cast<std::ptrdiff_t>(keep),
                                   events.end());
        break;
      }
      case RecordMode::kCounters:
        break;
    }
  }
  result.verified = options.verify ? workload.verify() : true;
  return result;
}

MultiExperimentResult run_multi_experiment(const std::string& workload_name,
                                           std::size_t gpu_count, const MultiPolicy& policy,
                                           const MultiRunOptions& options) {
  auto wl = workloads::make_workload(workload_name);
  return run_multi_experiment(*wl, gpu_count, policy, options);
}

}  // namespace gg::greengpu
