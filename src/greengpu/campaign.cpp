#include "src/greengpu/campaign.h"

#include <mutex>
#include <stdexcept>

#include "src/common/csv.h"
#include "src/common/job_pool.h"
#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/greengpu/batch_engine.h"
#include "src/sim/soa.h"
#include "src/workloads/registry.h"

namespace gg::greengpu {

const CampaignCell& CampaignResult::cell(std::size_t workload_index,
                                         std::size_t policy_index) const {
  if (workload_index >= workloads.size() || policy_index >= policy_names.size()) {
    throw std::out_of_range("CampaignResult: cell index");
  }
  return cells[workload_index * policy_names.size() + policy_index];
}

double CampaignResult::mean_saving(std::size_t policy_index) const {
  if (workloads.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    sum += cell(w, policy_index).energy_saving;
  }
  return sum / static_cast<double>(workloads.size());
}

bool CampaignResult::all_verified() const {
  for (const auto& c : cells) {
    if (!c.result.verified) return false;
  }
  return true;
}

std::string_view to_string(CampaignEngine engine) {
  switch (engine) {
    case CampaignEngine::kScalar: return "scalar";
    case CampaignEngine::kBatch: return "batch";
  }
  return "unknown";
}

std::optional<CampaignEngine> campaign_engine_from_string(std::string_view name) {
  if (name == "scalar") return CampaignEngine::kScalar;
  if (name == "batch") return CampaignEngine::kBatch;
  return std::nullopt;
}

std::uint64_t campaign_cell_seed(std::uint64_t base, std::size_t cell_index) {
  std::uint64_t state =
      base + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(cell_index) + 1);
  return splitmix64(state);
}

CampaignPlan plan_campaign(const CampaignConfig& config) {
  CampaignPlan plan;
  plan.workloads =
      config.workloads.empty() ? workloads::all_workload_names() : config.workloads;
  plan.policies = config.policies;
  if (plan.policies.empty()) {
    plan.policies = {Policy::best_performance(), Policy::scaling_only(),
                     Policy::division_only(), Policy::green_gpu()};
  }
  // Fault-seed sweep: expand every policy into `fault_replicates` copies
  // that differ only in their forked fault seed (the flat cell index feeds
  // campaign_cell_seed).  Expansion happens in the plan so the scalar and
  // batch engines, the checkpoint journal and the reports all see the same
  // cell matrix.
  if (config.fault_replicates > 1 && config.options.faults.any_faults()) {
    std::vector<Policy> expanded;
    expanded.reserve(plan.policies.size() * config.fault_replicates);
    for (const Policy& base : plan.policies) {
      for (std::size_t r = 0; r < config.fault_replicates; ++r) {
        Policy copy = base;
        copy.name = base.name + "#s" + std::to_string(r);
        expanded.push_back(std::move(copy));
      }
    }
    plan.policies = std::move(expanded);
    plan.replicate_stride = config.fault_replicates;
  }
  return plan;
}

void finalize_campaign_savings(CampaignResult& result) {
  const std::size_t policy_count = result.policy_names.size();
  const std::size_t total = result.cells.size();
  if (policy_count == 0 || total == 0) return;
  // SoA pass: gather every cell's scalars (and its workload-row baseline,
  // broadcast per cell) into contiguous arrays, run the element-independent
  // savings kernels over the whole campaign at once, scatter back.  The
  // kernels are the same IEEE operations the old per-cell loop performed,
  // in the same order, so reports are bit-identical — just vectorizable.
  std::vector<double> energy(total), base_energy(total);
  std::vector<double> time(total), base_time(total);
  std::vector<double> saving(total), delta(total);
  for (std::size_t w = 0; w < result.workloads.size(); ++w) {
    const ExperimentResult& baseline = result.cells[w * policy_count].result;
    const double baseline_energy = baseline.total_energy().get();
    const double baseline_time = baseline.exec_time.get();
    for (std::size_t p = 0; p < policy_count; ++p) {
      const std::size_t i = w * policy_count + p;
      energy[i] = result.cells[i].result.total_energy().get();
      time[i] = result.cells[i].result.exec_time.get();
      base_energy[i] = baseline_energy;
      base_time[i] = baseline_time;
    }
  }
  sim::batch_saving_vs_baseline(energy.data(), base_energy.data(), saving.data(), total);
  sim::batch_rel_delta(time.data(), base_time.data(), delta.data(), total);
  for (std::size_t i = 0; i < total; ++i) {
    result.cells[i].energy_saving = saving[i];
    result.cells[i].time_delta = delta[i];
  }
}

CampaignResult run_campaign(const CampaignConfig& config, const CampaignProgress& progress) {
  const CampaignPlan plan = plan_campaign(config);
  CampaignResult out;
  out.workloads = plan.workloads;
  const std::vector<Policy>& policies = plan.policies;
  for (const auto& p : policies) out.policy_names.push_back(p.name);

  const std::size_t policy_count = policies.size();
  const std::size_t total = out.workloads.size() * policy_count;
  out.cells.resize(total);

  // Every cell is an independent simulation on a fresh Platform, so the
  // matrix fans out across the pool.  Results land in index-determined
  // slots and savings are computed in a deterministic post-pass, so the
  // report is byte-identical for any `jobs` value — and for either engine
  // (the batch engine reproduces the scalar reports bit-for-bit).
  std::mutex progress_mutex;
  std::size_t completed = 0;
  if (config.engine == CampaignEngine::kBatch) {
    BatchCampaignEngine engine(plan, config.options, config.jobs);
    BatchCampaignEngine::Hooks hooks;
    if (progress) {
      hooks.on_done = [&](std::size_t i, const ExperimentResult&) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        ++completed;
        progress(out.workloads[i / policy_count], policies[i % policy_count].name,
                 completed, total);
      };
    }
    engine.run(out.cells, hooks);
  } else {
    common::JobPool pool(config.jobs);
    pool.run(total, [&](std::size_t i) {
      const std::size_t w = i / policy_count;
      const std::size_t p = i % policy_count;
      RunOptions options = config.options;
      if (options.faults.any_faults()) {
        options.faults.seed = campaign_cell_seed(options.faults.seed, i);
      }
      out.cells[i].result = run_experiment(out.workloads[w], policies[p], options);
      if (progress) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        ++completed;
        progress(out.workloads[w], policies[p].name, completed, total);
      }
    });
  }

  finalize_campaign_savings(out);
  return out;
}

void write_campaign_csv(std::ostream& os, const CampaignResult& result) {
  CsvWriter w(os);
  w.row_values("workload", "policy", "exec_time_s", "gpu_energy_J", "cpu_energy_J",
               "total_energy_J", "energy_saving", "time_delta", "final_cpu_share",
               "verified");
  for (std::size_t wl = 0; wl < result.workloads.size(); ++wl) {
    for (std::size_t p = 0; p < result.policy_names.size(); ++p) {
      const CampaignCell& c = result.cell(wl, p);
      w.row_values(result.workloads[wl], result.policy_names[p],
                   c.result.exec_time.get(), c.result.gpu_energy.get(),
                   c.result.cpu_energy.get(), c.result.total_energy().get(),
                   c.energy_saving, c.time_delta, c.result.final_ratio,
                   c.result.verified ? 1 : 0);
    }
  }
}

void write_campaign_json(std::ostream& os, const CampaignResult& result) {
  JsonWriter w(os);
  w.begin_object();
  w.key("runs");
  w.begin_array();
  for (std::size_t wl = 0; wl < result.workloads.size(); ++wl) {
    for (std::size_t p = 0; p < result.policy_names.size(); ++p) {
      const CampaignCell& c = result.cell(wl, p);
      w.begin_object();
      w.kv("workload", result.workloads[wl]);
      w.kv("policy", result.policy_names[p]);
      w.kv("exec_time_s", c.result.exec_time.get());
      w.kv("gpu_energy_J", c.result.gpu_energy.get());
      w.kv("cpu_energy_J", c.result.cpu_energy.get());
      w.kv("total_energy_J", c.result.total_energy().get());
      w.kv("gpu_dynamic_energy_J", c.result.gpu_dynamic_energy().get());
      w.kv("energy_saving", c.energy_saving);
      w.kv("time_delta", c.time_delta);
      w.kv("final_cpu_share", c.result.final_ratio);
      w.kv("verified", c.result.verified);
      w.end_object();
    }
  }
  w.end_array();
  w.key("policy_summary");
  w.begin_array();
  for (std::size_t p = 0; p < result.policy_names.size(); ++p) {
    w.begin_object();
    w.kv("policy", result.policy_names[p]);
    w.kv("mean_energy_saving", result.mean_saving(p));
    w.end_object();
  }
  w.end_array();
  w.kv("all_verified", result.all_verified());
  w.end_object();
  os << '\n';
}

void write_campaign_markdown(std::ostream& os, const CampaignResult& result) {
  os << "| workload |";
  for (std::size_t p = 0; p < result.policy_names.size(); ++p) {
    os << ' ' << result.policy_names[p] << " |";
  }
  os << "\n|---|";
  for (std::size_t p = 0; p < result.policy_names.size(); ++p) os << "---|";
  os << '\n';
  char buf[64];
  for (std::size_t wl = 0; wl < result.workloads.size(); ++wl) {
    os << "| " << result.workloads[wl] << " |";
    for (std::size_t p = 0; p < result.policy_names.size(); ++p) {
      const CampaignCell& c = result.cell(wl, p);
      if (p == 0) {
        std::snprintf(buf, sizeof buf, " %.0f J |", c.result.total_energy().get());
      } else {
        std::snprintf(buf, sizeof buf, " %+.2f%% (t %+.1f%%) |",
                      100.0 * c.energy_saving, 100.0 * c.time_delta);
      }
      os << buf;
    }
    os << '\n';
  }
  os << "| **mean saving** |";
  for (std::size_t p = 0; p < result.policy_names.size(); ++p) {
    if (p == 0) {
      os << " baseline |";
    } else {
      std::snprintf(buf, sizeof buf, " **%+.2f%%** |", 100.0 * result.mean_saving(p));
      os << buf;
    }
  }
  os << '\n';
}

}  // namespace gg::greengpu
