// Bounded decision/telemetry recording for controllers and runners.
//
// Every controller in the stack (scaler, CPU governor, divider) and the
// experiment runner keep per-step logs that the paper's figures and the
// tests consume.  A long campaign neither reads nor needs those logs, yet
// the seed implementation grew them without bound — linear memory in
// simulated time.  `DecisionRecorder` makes the retention policy explicit:
//
//  * kFull     — keep every record (traces, figures, tests; the default for
//                single runs so existing consumers see identical data);
//  * kRing     — keep only the most recent `ring_capacity` records (long
//                interactive runs that want a tail for debugging);
//  * kCounters — keep nothing but the count (campaign default; memory is
//                O(1) no matter how long the run).
//
// Recording mode is pure telemetry: it never feeds back into any control
// decision, so switching modes leaves joules, traces and decision streams
// bit-identical — only what is *retained* changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/snapshot.h"
#include "src/common/thread_checker.h"

namespace gg::greengpu {

enum class RecordMode {
  kFull,      // unbounded log (seed behaviour)
  kRing,      // last `ring_capacity` records
  kCounters,  // count only, no storage
};

[[nodiscard]] std::string_view to_string(RecordMode mode);
/// Accepts "full", "ring", "counters"; throws std::invalid_argument otherwise.
[[nodiscard]] RecordMode record_mode_from_string(std::string_view name);

/// Retention policy knob threaded through RunOptions and the CLI.
struct RecordOptions {
  RecordMode mode{RecordMode::kFull};
  /// Retained tail length in kRing mode (ignored otherwise).
  std::size_t ring_capacity{256};
};

/// A telemetry sink with a configurable retention policy.  `push` is O(1)
/// and allocation-free once the store reached its working size (kFull
/// amortizes like vector::push_back; kRing and kCounters never allocate
/// after the first wrap / at all).
template <typename T>
class DecisionRecorder {
 public:
  DecisionRecorder() = default;
  explicit DecisionRecorder(RecordOptions opts)
      : mode_(opts.mode), cap_(opts.ring_capacity == 0 ? 1 : opts.ring_capacity) {
    if (mode_ == RecordMode::kRing) store_.reserve(cap_);
  }

  GG_HOT void push(const T& value) {
    owner_.assert_owner("greengpu::DecisionRecorder");
    ++total_;
    switch (mode_) {
      case RecordMode::kFull:
        // GG_LINT_ALLOW(hot-alloc): kFull retention is the explicit
        // opt-in unbounded mode; growth amortizes like vector::push_back.
        store_.push_back(value);
        break;
      case RecordMode::kRing:
        if (store_.size() < cap_) {
          // GG_LINT_ALLOW(hot-alloc): fills pre-reserved ring capacity;
          // never reallocates (reserve(cap_) ran at construction).
          store_.push_back(value);
        } else {
          store_[head_] = value;
        }
        head_ = (head_ + 1) % cap_;
        break;
      case RecordMode::kCounters:
        break;
    }
  }

  [[nodiscard]] RecordMode mode() const { return mode_; }
  /// Records pushed over the recorder's lifetime (all modes).
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Records currently retained (0 in kCounters mode).
  [[nodiscard]] std::size_t retained() const { return store_.size(); }

  /// The retained records, oldest first.  kFull: everything; kRing: the
  /// tail in arrival order; kCounters: empty.
  [[nodiscard]] std::vector<T> snapshot() const {
    if (mode_ != RecordMode::kRing || store_.size() < cap_) return store_;
    std::vector<T> out;
    out.reserve(store_.size());
    for (std::size_t i = 0; i < store_.size(); ++i) {
      out.push_back(store_[(head_ + i) % cap_]);
    }
    return out;
  }

  /// Move the retained records out, oldest first, leaving the recorder
  /// empty (total is kept).  Avoids the snapshot() copy when the recorder
  /// is about to be discarded — e.g. the runner handing a run's iteration
  /// log to the result.
  [[nodiscard]] std::vector<T> take() {
    std::vector<T> out;
    if (mode_ != RecordMode::kRing || store_.size() < cap_) {
      out = std::move(store_);
    } else {
      out = snapshot();
    }
    store_.clear();
    head_ = 0;
    return out;
  }

  /// Zero-copy view of the full log.  Meaningful in kFull mode only (kRing
  /// storage is rotated; kCounters keeps nothing) — legacy accessors that
  /// return `const std::vector<T>&` route through this.
  [[nodiscard]] const std::vector<T>& log() const { return store_; }

  void clear() {
    store_.clear();
    head_ = 0;
    total_ = 0;
  }

  /// Serialize policy + counters + retained records; `item` writes one T
  /// (`item(w, t)`).  Restoring into a recorder with the same policy
  /// continues the stream bit-identically.
  template <typename WriteItem>
  void save(common::SnapshotWriter& w, WriteItem item) const {
    w.u8(static_cast<std::uint8_t>(mode_));
    w.u64(cap_);
    w.u64(head_);
    w.u64(total_);
    w.u64(store_.size());
    for (const T& t : store_) item(w, t);
  }

  /// Counterpart of save(); `item` reads one T (`T t = item(r)`).  Throws
  /// common::SnapshotError when the saved retention policy does not match
  /// this recorder's (policy is configuration, not state).
  template <typename ReadItem>
  void load(common::SnapshotReader& r, ReadItem item) {
    const auto mode = static_cast<RecordMode>(r.u8());
    const std::uint64_t cap = r.u64();
    if (mode != mode_ || cap != cap_) {
      throw common::SnapshotError(
          "DecisionRecorder: retention policy mismatch between snapshot and "
          "restored recorder");
    }
    head_ = static_cast<std::size_t>(r.u64());
    total_ = r.u64();
    const std::uint64_t n = r.u64();
    store_.clear();
    store_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) store_.push_back(item(r));
  }

 private:
  RecordMode mode_{RecordMode::kFull};
  std::size_t cap_{256};
  std::size_t head_{0};
  std::uint64_t total_{0};
  std::vector<T> store_;
  /// Recorders are per-run, single-owner state (each campaign cell records
  /// on its own worker); armed in debug/TSan builds, free in release.
  common::ThreadChecker owner_;
};

}  // namespace gg::greengpu
