#include "src/greengpu/runner.h"

#include <algorithm>

#include "src/common/snapshot.h"
#include "src/cudalite/nvml.h"
#include "src/cudalite/nvsettings.h"
#include "src/sim/platform.h"
#include "src/workloads/registry.h"

namespace gg::greengpu {

ExperimentResult run_experiment(workloads::Workload& workload, const Policy& policy,
                                const RunOptions& options) {
  sim::Platform platform;  // testbed default: GPU at lowest clocks, CPU at peak
  cudalite::Runtime rt(platform, options.pool_workers, options.sync_spin);

  // --- Fault layer ---------------------------------------------------------
  // Installed only when at least one channel is active, so the default run
  // is bit-identical to the fault-free build.
  sim::FaultInjector* injector = nullptr;
  if (options.faults.any_faults()) {
    injector = &platform.install_faults(options.faults);
  }
  const HardeningParams& hard = policy.params.hardening;
  if (hard.enabled) {
    rt.set_fault_tolerance(
        cudalite::FaultTolerance{hard.max_launch_retries, hard.reroute_failed_side});
  }

  // --- Frequency setup / tier 2 controllers --------------------------------
  cudalite::NvmlDevice nvml(platform);
  cudalite::NvSettings settings(platform);
  std::unique_ptr<GpuFrequencyScaler> scaler;
  std::unique_ptr<CpuGovernor> governor;

  if (policy.gpu_scaling) {
    // The paper's Fig. 5 runs start from the driver-default lowest clocks;
    // the platform already starts there.
    WmaParams wma = policy.params.wma;
    if (hard.enabled) wma.harden = true;
    scaler = std::make_unique<GpuFrequencyScaler>(nvml, settings, wma);
    scaler->set_record(options.record);
    scaler->attach(platform.queue());
  } else if (policy.fixed_gpu_levels) {
    settings.set_clock_levels(policy.fixed_gpu_levels->first,
                              policy.fixed_gpu_levels->second);
  } else {
    settings.set_clock_levels(0, 0);  // best-performance: both domains at peak
  }
  governor = make_cpu_governor(policy.cpu_governor, platform, policy.params.ondemand);
  if (governor) {
    governor->set_record(options.record);
    governor->attach();
  }

  // --- Tier 1 --------------------------------------------------------------
  std::unique_ptr<Divider> divider;
  double ratio = policy.fixed_ratio;
  if (policy.division && workload.divisible()) {
    divider = make_divider(policy.divider, policy.params.division);
    divider->set_record(options.record);
    ratio = divider->ratio();
  }
  if (!workload.divisible()) ratio = 0.0;

  std::unique_ptr<sim::TraceRecorder> tracer;
  if (options.record_trace) {
    tracer = std::make_unique<sim::TraceRecorder>(platform, options.trace_period);
  }

  ExperimentResult result;
  result.workload = std::string(workload.name());
  result.policy = policy.name;
  result.gpu_idle_power =
      platform.gpu().idle_power(platform.gpu().core_table().lowest_level(),
                                platform.gpu().mem_table().lowest_level());
  // In the emulated scenario the spin loops keep running, but at the lowest
  // P-state.
  result.cpu_spin_power_lowest =
      platform.cpu().power_at(platform.cpu().table().lowest_level(), 1.0);

  workload.setup(rt);
  cudalite::Stream stream = rt.create_stream();

  const std::size_t n_iters = options.max_iterations
                                  ? std::min(options.max_iterations, workload.iterations())
                                  : workload.iterations();

  const sim::EnergySnapshot run_start = platform.snapshot();
  const double spin_time_start = platform.cpu().counters().spin_integral;
  const Joules spin_energy_start = platform.cpu().spin_energy();

  int watchdog_trips_left = hard.max_watchdog_trips;

  DecisionRecorder<IterationRecord> iteration_log(options.record);

  for (std::size_t iter = 0; iter < n_iters; ++iter) {
    const sim::EnergySnapshot e0 = platform.snapshot();
    const Seconds t0 = platform.now();
    const std::size_t ev0 = injector ? injector->events().size() : 0;
    const bool throttled_at_start = injector != nullptr && injector->throttled(0);

    bool gpu_done = false;
    bool cpu_done = false;
    Seconds gpu_at = t0;
    Seconds cpu_at = t0;
    workload.run_iteration(
        rt, stream, iter, ratio,
        [&] {
          gpu_done = true;
          gpu_at = platform.now();
        },
        [&] {
          cpu_done = true;
          cpu_at = platform.now();
        });
    if (injector != nullptr && hard.watchdog_timeout > Seconds{0.0}) {
      // Watchdog: bound the simulated time spent waiting on the join.  A
      // rejected un-rerouted side never signals, and with a scaler attached
      // the queue never drains, so an un-watched wait would spin forever.
      while (!(gpu_done && cpu_done)) {
        bool fired = false;
        sim::EventHandle wd =
            platform.queue().schedule_in(hard.watchdog_timeout, [&] { fired = true; });
        rt.wait_until([&] { return (gpu_done && cpu_done) || fired; });
        wd.cancel();
        if (gpu_done && cpu_done) break;
        injector->note(sim::FaultChannel::kHarness, sim::FaultOutcome::kWatchdogTrip);
        ++result.watchdog_trips;
        if (!hard.enabled || --watchdog_trips_left < 0) {
          throw ExperimentAborted("run_experiment: iteration " + std::to_string(iter) +
                                  " stuck for " +
                                  std::to_string(hard.watchdog_timeout.get()) +
                                  " s (simulated) — watchdog abort");
        }
      }
    } else {
      rt.wait_until([&] { return gpu_done && cpu_done; });
    }
    workload.finish_iteration(rt, iter);

    const sim::EnergySnapshot e1 = platform.snapshot();
    const sim::EnergyDelta d = sim::Platform::delta(e0, e1);

    IterationRecord rec;
    rec.index = iter;
    rec.cpu_ratio = ratio;
    rec.cpu_time = cpu_at - t0;
    rec.gpu_time = gpu_at - t0;
    rec.duration = d.elapsed;
    rec.gpu_energy = d.gpu;
    rec.cpu_energy = d.cpu;

    if (injector != nullptr) {
      const auto& events = injector->events();
      rec.fault_events = events.size() - ev0;
      rec.degraded = throttled_at_start;
      for (std::size_t i = ev0; i < events.size(); ++i) {
        switch (events[i].outcome) {
          case sim::FaultOutcome::kRerouted:
          case sim::FaultOutcome::kForcedCompletion:
          case sim::FaultOutcome::kRetriesExhausted:
          case sim::FaultOutcome::kWatchdogTrip:
          case sim::FaultOutcome::kThrottleStart:
            rec.degraded = true;
            break;
          default:
            break;
        }
      }
      if (rec.degraded) ++result.degraded_iterations;
    }

    if (divider) {
      IterationFeedback feedback{rec.cpu_time, rec.gpu_time, rec.total_energy()};
      // Only a hardened policy knows to distrust a faulted iteration; the
      // un-hardened baseline learns from the distorted times on purpose.
      feedback.degraded = hard.enabled && rec.degraded;
      const DivisionDecision decision = divider->update(feedback);
      rec.division_action = decision.action;
      ratio = decision.ratio;
      if (divider->converged() &&
          result.convergence_iteration == static_cast<std::size_t>(-1)) {
        result.convergence_iteration = iter;
      }
    }
    iteration_log.push(rec);

    if (options.checkpoint_every != 0 && !options.checkpoint_dir.empty() &&
        (iter + 1) % options.checkpoint_every == 0) {
      common::SnapshotWriter ckpt;
      ckpt.u64(iter + 1);
      ckpt.f64(platform.now().get());
      ckpt.b(scaler != nullptr);
      ckpt.b(divider != nullptr);
      if (scaler) scaler->save(ckpt);
      if (divider) divider->save(ckpt);
      ckpt.write_atomic(options.checkpoint_dir + "/" + options.checkpoint_tag +
                        ".ggsn");
    }
  }

  workload.teardown(rt);

  const sim::EnergySnapshot run_end = platform.snapshot();
  const sim::EnergyDelta total = sim::Platform::delta(run_start, run_end);
  result.exec_time = total.elapsed;
  result.gpu_energy = total.gpu;
  result.cpu_energy = total.cpu;
  // Spin accounting over the measured window only (setup transfers spin too
  // but are excluded from exec_time).
  result.cpu_spin_energy = platform.cpu().spin_energy() - spin_energy_start;
  result.cpu_spin_time =
      Seconds{platform.cpu().counters().spin_integral - spin_time_start};
  // Conservative Fig. 6c accounting: one guard window per kernel launch is
  // treated as unthrottleable communication time.
  const Seconds guard = options.emulation_guard_per_launch *
                        static_cast<double>(platform.gpu().kernels_completed());
  result.cpu_credited_spin_time =
      std::max(Seconds{0.0}, result.cpu_spin_time - guard);
  result.cpu_credited_spin_energy =
      result.cpu_spin_time > Seconds{0.0}
          ? result.cpu_spin_energy *
                (result.cpu_credited_spin_time / result.cpu_spin_time)
          : Joules{0.0};
  result.final_ratio = ratio;
  result.gpu_frequency_transitions = platform.gpu().frequency_transitions();

  result.iteration_count = static_cast<std::size_t>(iteration_log.total());
  result.iterations = iteration_log.take();

  if (scaler) {
    scaler->detach();
    result.scaler_decision_count = scaler->decision_count();
    result.scaler_decisions = scaler->decisions_snapshot();
  }
  if (governor) {
    governor->detach();
    result.governor_decision_count = governor->decision_count();
    result.governor_decisions = governor->decisions_snapshot();
  }
  if (tracer) {
    tracer->stop();
    result.trace = tracer->samples();
  }
  if (injector != nullptr) {
    const auto& events = injector->events();
    result.fault_event_count = events.size();
    switch (options.record.mode) {
      case RecordMode::kFull:
        result.fault_events = events;
        break;
      case RecordMode::kRing: {
        const std::size_t keep = std::min(events.size(), options.record.ring_capacity);
        result.fault_events.assign(events.end() - static_cast<std::ptrdiff_t>(keep),
                                   events.end());
        break;
      }
      case RecordMode::kCounters:
        break;
    }
  }
  // A truncated run cannot be checked against the full-length reference.
  const bool can_verify = options.verify && n_iters == workload.iterations();
  result.verify_skipped = !can_verify;
  result.verified = can_verify ? workload.verify() : true;
  return result;
}

ExperimentResult run_experiment(const std::string& workload_name, const Policy& policy,
                                const RunOptions& options) {
  auto wl = workloads::make_workload(workload_name);
  return run_experiment(*wl, policy, options);
}

}  // namespace gg::greengpu
