#include "src/greengpu/runner.h"

#include <algorithm>

#include "src/common/snapshot.h"
#include "src/cudalite/nvml.h"
#include "src/cudalite/nvsettings.h"
#include "src/sim/platform.h"
#include "src/workloads/registry.h"

namespace gg::greengpu {

namespace {

void save_iteration_record(common::SnapshotWriter& w, const IterationRecord& rec) {
  w.u64(rec.index);
  w.f64(rec.cpu_ratio);
  w.f64(rec.cpu_time.get());
  w.f64(rec.gpu_time.get());
  w.f64(rec.duration.get());
  w.f64(rec.gpu_energy.get());
  w.f64(rec.cpu_energy.get());
  w.f64(rec.copy_busy_time.get());
  w.f64(rec.overlap_time.get());
  w.u8(static_cast<std::uint8_t>(rec.division_action));
  w.u64(rec.fault_events);
  w.b(rec.degraded);
}

IterationRecord load_iteration_record(common::SnapshotReader& r) {
  IterationRecord rec;
  rec.index = static_cast<std::size_t>(r.u64());
  rec.cpu_ratio = r.f64();
  rec.cpu_time = Seconds{r.f64()};
  rec.gpu_time = Seconds{r.f64()};
  rec.duration = Seconds{r.f64()};
  rec.gpu_energy = Joules{r.f64()};
  rec.cpu_energy = Joules{r.f64()};
  rec.copy_busy_time = Seconds{r.f64()};
  rec.overlap_time = Seconds{r.f64()};
  rec.division_action = static_cast<DivisionAction>(r.u8());
  rec.fault_events = static_cast<std::size_t>(r.u64());
  rec.degraded = r.b();
  return rec;
}

/// Absolute fire time of the k-th periodic tick (1-based), reproducing the
/// exact floating-point accumulation the self-rescheduling tick chain
/// performs (each tick schedules the next at fire_time + interval).
Seconds tick_time(Seconds interval, std::uint64_t k) {
  Seconds t{0.0};
  for (std::uint64_t i = 0; i < k; ++i) t = t + interval;
  return t;
}

}  // namespace

ExperimentEngine::ExperimentEngine(workloads::Workload& workload, const Policy& policy,
                                   const RunOptions& options)
    : workload_(&workload), policy_(&policy), options_(options),
      iteration_log_(options.record) {}

ExperimentEngine::~ExperimentEngine() = default;

void ExperimentEngine::install_faults() {
  injector_ = &platform_->install_faults(options_.faults);
}

void ExperimentEngine::start() {
  if (started_) throw std::logic_error("ExperimentEngine: start() called twice");
  started_ = true;

  platform_ = std::make_unique<sim::Platform>();  // testbed default: GPU at
                                                  // lowest clocks, CPU at peak
  rt_ = std::make_unique<cudalite::Runtime>(*platform_, options_.pool_workers,
                                            options_.sync_spin);
  if (options_.model_only) rt_->set_compute_mode(cudalite::ComputeMode::kModelOnly);

  // --- Fault layer ---------------------------------------------------------
  // Installed only when at least one channel is active, so the default run
  // is bit-identical to the fault-free build.  `faults_active_from` delays
  // the installation to an iteration boundary (fault-free warm-up prefix).
  if (options_.faults.any_faults() && options_.faults_active_from == 0) {
    install_faults();
  }
  const HardeningParams& hard = policy_->params.hardening;
  if (hard.enabled) {
    rt_->set_fault_tolerance(
        cudalite::FaultTolerance{hard.max_launch_retries, hard.reroute_failed_side});
  }

  // --- Frequency setup / tier 2 controllers --------------------------------
  nvml_ = std::make_unique<cudalite::NvmlDevice>(*platform_);
  settings_ = std::make_unique<cudalite::NvSettings>(*platform_);

  if (policy_->gpu_scaling) {
    // The paper's Fig. 5 runs start from the driver-default lowest clocks;
    // the platform already starts there.
    WmaParams wma = policy_->params.wma;
    if (hard.enabled) wma.harden = true;
    scaler_ = std::make_unique<GpuFrequencyScaler>(*nvml_, *settings_, wma);
    scaler_->set_record(options_.record);
    scaler_->attach(platform_->queue());
  } else if (policy_->fixed_gpu_levels) {
    settings_->set_clock_levels(policy_->fixed_gpu_levels->first,
                                policy_->fixed_gpu_levels->second);
  } else {
    settings_->set_clock_levels(0, 0);  // best-performance: both domains at peak
  }
  governor_ = make_cpu_governor(policy_->cpu_governor, *platform_,
                                policy_->params.ondemand);
  if (governor_) {
    governor_->set_record(options_.record);
    governor_->attach();
  }

  // --- Tier 1 --------------------------------------------------------------
  ratio_ = policy_->fixed_ratio;
  if (policy_->division && workload_->divisible()) {
    divider_ = make_divider(policy_->divider, policy_->params.division);
    divider_->set_record(options_.record);
    ratio_ = divider_->ratio();
  }
  if (!workload_->divisible()) ratio_ = 0.0;

  if (options_.record_trace) {
    tracer_ = std::make_unique<sim::TraceRecorder>(*platform_, options_.trace_period);
  }

  result_ = ExperimentResult{};
  result_.workload = std::string(workload_->name());
  result_.policy = policy_->name;
  result_.gpu_idle_power =
      platform_->gpu().idle_power(platform_->gpu().core_table().lowest_level(),
                                  platform_->gpu().mem_table().lowest_level());
  // In the emulated scenario the spin loops keep running, but at the lowest
  // P-state.
  result_.cpu_spin_power_lowest =
      platform_->cpu().power_at(platform_->cpu().table().lowest_level(), 1.0);

  workload_->setup(*rt_);
  stream_ = rt_->create_stream();

  n_iters_ = options_.max_iterations
                 ? std::min(options_.max_iterations, workload_->iterations())
                 : workload_->iterations();

  run_start_ = platform_->snapshot();
  spin_time_start_ = platform_->cpu().counters().spin_integral;
  spin_energy_start_ = platform_->cpu().spin_energy();

  watchdog_trips_left_ = hard.max_watchdog_trips;
  iter_ = 0;
}

void ExperimentEngine::write_checkpoint() const {
  common::SnapshotWriter ckpt;
  ckpt.u64(iter_ + 1);
  ckpt.f64(platform_->now().get());
  ckpt.b(scaler_ != nullptr);
  ckpt.b(divider_ != nullptr);
  if (scaler_) scaler_->save(ckpt);
  if (divider_) divider_->save(ckpt);
  ckpt.write_atomic(options_.checkpoint_dir + "/" + options_.checkpoint_tag + ".ggsn");
}

void ExperimentEngine::step_iteration() {
  if (!started_ || finished_) {
    throw std::logic_error("ExperimentEngine: step_iteration() outside a run");
  }
  if (iter_ >= n_iters_) {
    throw std::logic_error("ExperimentEngine: run already complete");
  }
  // Late fault activation: the injector joins at this iteration boundary
  // (the warm-up prefix up to here is bit-identical to a fault-free run).
  if (injector_ == nullptr && options_.faults.any_faults() &&
      options_.faults_active_from != 0 && iter_ == options_.faults_active_from) {
    install_faults();
  }
  const HardeningParams& hard = policy_->params.hardening;
  sim::Platform& platform = *platform_;
  cudalite::Runtime& rt = *rt_;
  const std::size_t iter = iter_;

  const sim::EnergySnapshot e0 = platform.snapshot();
  const sim::CopyEngineCounters ce0 = platform.copy_engine().counters();
  const Seconds t0 = platform.now();
  const std::size_t ev0 = injector_ ? injector_->events().size() : 0;
  const bool throttled_at_start = injector_ != nullptr && injector_->throttled(0);

  bool gpu_done = false;
  bool cpu_done = false;
  Seconds gpu_at = t0;
  Seconds cpu_at = t0;
  workload_->run_iteration(
      rt, *stream_, iter, ratio_,
      [&] {
        gpu_done = true;
        gpu_at = platform.now();
      },
      [&] {
        cpu_done = true;
        cpu_at = platform.now();
      });
  if (injector_ != nullptr && hard.watchdog_timeout > Seconds{0.0}) {
    // Watchdog: bound the simulated time spent waiting on the join.  A
    // rejected un-rerouted side never signals, and with a scaler attached
    // the queue never drains, so an un-watched wait would spin forever.
    while (!(gpu_done && cpu_done)) {
      bool fired = false;
      sim::EventHandle wd =
          platform.queue().schedule_in(hard.watchdog_timeout, [&] { fired = true; });
      rt.wait_until([&] { return (gpu_done && cpu_done) || fired; });
      wd.cancel();
      if (gpu_done && cpu_done) break;
      injector_->note(sim::FaultChannel::kHarness, sim::FaultOutcome::kWatchdogTrip);
      ++result_.watchdog_trips;
      if (!hard.enabled || --watchdog_trips_left_ < 0) {
        throw ExperimentAborted("run_experiment: iteration " + std::to_string(iter) +
                                " stuck for " +
                                std::to_string(hard.watchdog_timeout.get()) +
                                " s (simulated) — watchdog abort");
      }
    }
  } else {
    rt.wait_until([&] { return gpu_done && cpu_done; });
  }
  workload_->finish_iteration(rt, iter);

  const sim::EnergySnapshot e1 = platform.snapshot();
  const sim::CopyEngineCounters ce1 = platform.copy_engine().counters();
  const sim::EnergyDelta d = sim::Platform::delta(e0, e1);

  IterationRecord rec;
  rec.index = iter;
  rec.cpu_ratio = ratio_;
  rec.cpu_time = cpu_at - t0;
  rec.gpu_time = gpu_at - t0;
  rec.duration = d.elapsed;
  rec.gpu_energy = d.gpu;
  rec.cpu_energy = d.cpu;
  rec.copy_busy_time = Seconds{ce1.busy_integral - ce0.busy_integral};
  rec.overlap_time = Seconds{ce1.overlap_integral - ce0.overlap_integral};

  if (injector_ != nullptr) {
    const auto& events = injector_->events();
    rec.fault_events = events.size() - ev0;
    rec.degraded = throttled_at_start;
    for (std::size_t i = ev0; i < events.size(); ++i) {
      switch (events[i].outcome) {
        case sim::FaultOutcome::kRerouted:
        case sim::FaultOutcome::kForcedCompletion:
        case sim::FaultOutcome::kRetriesExhausted:
        case sim::FaultOutcome::kWatchdogTrip:
        case sim::FaultOutcome::kThrottleStart:
          rec.degraded = true;
          break;
        default:
          break;
      }
    }
    if (rec.degraded) ++result_.degraded_iterations;
  }

  if (divider_) {
    IterationFeedback feedback{rec.cpu_time, rec.gpu_time, rec.total_energy()};
    // Only a hardened policy knows to distrust a faulted iteration; the
    // un-hardened baseline learns from the distorted times on purpose.
    feedback.degraded = hard.enabled && rec.degraded;
    feedback.copy_busy_time = rec.copy_busy_time;
    feedback.overlap_time = rec.overlap_time;
    const DivisionDecision decision = divider_->update(feedback);
    rec.division_action = decision.action;
    if (decision.action != DivisionAction::kHold) ++result_.division_moves;
    ratio_ = decision.ratio;
    if (divider_->converged() &&
        result_.convergence_iteration == static_cast<std::size_t>(-1)) {
      result_.convergence_iteration = iter;
    }
  }
  iteration_log_.push(rec);

  if (options_.checkpoint_every != 0 && !options_.checkpoint_dir.empty() &&
      (iter + 1) % options_.checkpoint_every == 0) {
    write_checkpoint();
  }
  ++iter_;
}

ExperimentResult ExperimentEngine::finish() {
  if (!started_ || finished_) {
    throw std::logic_error("ExperimentEngine: finish() outside a run");
  }
  finished_ = true;
  sim::Platform& platform = *platform_;

  workload_->teardown(*rt_);

  const sim::EnergySnapshot run_end = platform.snapshot();
  const sim::EnergyDelta total = sim::Platform::delta(run_start_, run_end);
  result_.exec_time = total.elapsed;
  result_.gpu_energy = total.gpu;
  result_.cpu_energy = total.cpu;
  // Spin accounting over the measured window only (setup transfers spin too
  // but are excluded from exec_time).
  result_.cpu_spin_energy = platform.cpu().spin_energy() - spin_energy_start_;
  result_.cpu_spin_time =
      Seconds{platform.cpu().counters().spin_integral - spin_time_start_};
  // Conservative Fig. 6c accounting: one guard window per kernel launch is
  // treated as unthrottleable communication time.
  const Seconds guard = options_.emulation_guard_per_launch *
                        static_cast<double>(platform.gpu().kernels_completed());
  result_.cpu_credited_spin_time =
      std::max(Seconds{0.0}, result_.cpu_spin_time - guard);
  result_.cpu_credited_spin_energy =
      result_.cpu_spin_time > Seconds{0.0}
          ? result_.cpu_spin_energy *
                (result_.cpu_credited_spin_time / result_.cpu_spin_time)
          : Joules{0.0};
  result_.final_ratio = ratio_;
  result_.gpu_frequency_transitions = platform.gpu().frequency_transitions();

  result_.iteration_count = static_cast<std::size_t>(iteration_log_.total());
  result_.iterations = iteration_log_.take();

  if (scaler_) {
    scaler_->detach();
    result_.scaler_decision_count = scaler_->decision_count();
    result_.scaler_decisions = scaler_->decisions_snapshot();
  }
  if (governor_) {
    governor_->detach();
    result_.governor_decision_count = governor_->decision_count();
    result_.governor_decisions = governor_->decisions_snapshot();
  }
  if (tracer_) {
    tracer_->stop();
    result_.trace = tracer_->samples();
  }
  if (injector_ != nullptr) {
    const auto& events = injector_->events();
    result_.fault_event_count = events.size();
    switch (options_.record.mode) {
      case RecordMode::kFull:
        result_.fault_events = events;
        break;
      case RecordMode::kRing: {
        const std::size_t keep =
            std::min(events.size(), options_.record.ring_capacity);
        result_.fault_events.assign(events.end() - static_cast<std::ptrdiff_t>(keep),
                                    events.end());
        break;
      }
      case RecordMode::kCounters:
        break;
    }
  }
  if (options_.model_only) {
    // Data buffers were never written; the caller owns verification (the
    // batch engine memoizes one real run per workload and patches this).
    result_.verify_skipped = true;
    result_.verified = false;
  } else {
    // A truncated run cannot be checked against the full-length reference.
    const bool can_verify = options_.verify && n_iters_ == workload_->iterations();
    result_.verify_skipped = !can_verify;
    result_.verified = can_verify ? workload_->verify() : true;
  }
  return std::move(result_);
}

ExperimentResult ExperimentEngine::run() {
  start();
  while (iter_ < n_iters_) step_iteration();
  return finish();
}

void ExperimentEngine::save_prefix(common::SnapshotWriter& w) {
  if (!started_ || finished_) {
    throw std::logic_error("ExperimentEngine: save_prefix() outside a run");
  }
  if (injector_ != nullptr) {
    throw common::SnapshotError(
        "ExperimentEngine::save_prefix: fault injector already active "
        "(set faults_active_from past the fork boundary)");
  }
  if (tracer_) {
    throw common::SnapshotError(
        "ExperimentEngine::save_prefix: trace recorder not supported");
  }
  w.u64(iter_);
  platform_->save(w);
  nvml_->save(w);
  w.b(scaler_ != nullptr);
  if (scaler_) scaler_->save(w);
  w.b(governor_ != nullptr);
  if (governor_) governor_->save(w);
  w.b(divider_ != nullptr);
  if (divider_) divider_->save(w);
  w.f64(ratio_);
  w.f64(run_start_.time.get());
  w.f64(run_start_.gpu.get());
  w.f64(run_start_.cpu.get());
  w.u64(run_start_.per_gpu.size());
  for (const Joules e : run_start_.per_gpu) w.f64(e.get());
  w.f64(spin_time_start_);
  w.f64(spin_energy_start_.get());
  w.u64(result_.convergence_iteration);
  w.u64(result_.degraded_iterations);
  w.u64(result_.watchdog_trips);
  w.u64(static_cast<std::uint64_t>(watchdog_trips_left_));
  iteration_log_.save(w, save_iteration_record);
}

void ExperimentEngine::restore_prefix(common::SnapshotReader& r) {
  if (!started_ || finished_ || iter_ != 0) {
    throw std::logic_error(
        "ExperimentEngine: restore_prefix() requires a freshly started run");
  }
  if (injector_ != nullptr) {
    throw common::SnapshotError(
        "ExperimentEngine::restore_prefix: fault injector already active");
  }
  if (tracer_) {
    throw common::SnapshotError(
        "ExperimentEngine::restore_prefix: trace recorder not supported");
  }
  // Cancel the ticks start() armed so the queue is drained for the clock
  // restore; they are re-armed below at the donor run's exact phase.
  if (scaler_) scaler_->detach();
  if (governor_) governor_->detach();

  iter_ = static_cast<std::size_t>(r.u64());
  if (iter_ > n_iters_) {
    throw common::SnapshotError("ExperimentEngine::restore_prefix: iteration beyond run");
  }
  platform_->load(r);
  nvml_->load(r);
  if (r.b() != (scaler_ != nullptr)) {
    throw common::SnapshotError("ExperimentEngine::restore_prefix: scaler mismatch");
  }
  if (scaler_) scaler_->load(r);
  if (r.b() != (governor_ != nullptr)) {
    throw common::SnapshotError("ExperimentEngine::restore_prefix: governor mismatch");
  }
  if (governor_) governor_->load(r);
  if (r.b() != (divider_ != nullptr)) {
    throw common::SnapshotError("ExperimentEngine::restore_prefix: divider mismatch");
  }
  if (divider_) divider_->load(r);
  ratio_ = r.f64();
  run_start_.time = Seconds{r.f64()};
  run_start_.gpu = Joules{r.f64()};
  run_start_.cpu = Joules{r.f64()};
  run_start_.per_gpu.clear();
  const std::uint64_t per_gpu = r.u64();
  for (std::uint64_t i = 0; i < per_gpu; ++i) run_start_.per_gpu.push_back(Joules{r.f64()});
  spin_time_start_ = r.f64();
  spin_energy_start_ = Joules{r.f64()};
  result_.convergence_iteration = static_cast<std::size_t>(r.u64());
  result_.degraded_iterations = static_cast<std::size_t>(r.u64());
  result_.watchdog_trips = r.u64();
  watchdog_trips_left_ = static_cast<int>(r.u64());
  iteration_log_.load(r, load_iteration_record);

  // Re-arm the periodic tick trains at the exact next fire instants the
  // donor run had pending.  Relative order matters only when both ticks
  // collide at the same instant; the one whose previous tick (re)scheduled
  // it earlier holds the smaller sequence number, with the scaler winning
  // ties (it attaches first and fires first at collisions).
  const bool have_scaler = scaler_ != nullptr;
  const bool have_governor = governor_ != nullptr;
  auto arm_scaler = [&] {
    scaler_->attach_at(platform_->queue(),
                       tick_time(scaler_->params().interval, scaler_->steps() + 1));
  };
  auto arm_governor = [&] {
    governor_->attach_at(tick_time(governor_->interval(), governor_->steps() + 1));
  };
  if (have_scaler && have_governor) {
    const Seconds scaler_scheduled =
        tick_time(scaler_->params().interval, scaler_->steps());
    const Seconds governor_scheduled =
        tick_time(governor_->interval(), governor_->steps());
    if (governor_scheduled < scaler_scheduled) {
      arm_governor();
      arm_scaler();
    } else {
      arm_scaler();
      arm_governor();
    }
  } else if (have_scaler) {
    arm_scaler();
  } else if (have_governor) {
    arm_governor();
  }
}

ExperimentResult run_experiment(workloads::Workload& workload, const Policy& policy,
                                const RunOptions& options) {
  ExperimentEngine engine(workload, policy, options);
  return engine.run();
}

ExperimentResult run_experiment(const std::string& workload_name, const Policy& policy,
                                const RunOptions& options) {
  auto wl = workloads::make_workload(workload_name);
  return run_experiment(*wl, policy, options);
}

}  // namespace gg::greengpu
