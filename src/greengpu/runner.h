// Experiment runner: executes a workload on the simulated testbed under a
// policy and records everything the paper's figures report.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/cudalite/api.h"
#include "src/greengpu/division.h"
#include "src/greengpu/cpu_governor.h"
#include "src/greengpu/policy.h"
#include "src/greengpu/wma_scaler.h"
#include "src/sim/fault.h"
#include "src/sim/trace.h"
#include "src/workloads/workload.h"

namespace gg::greengpu {

/// Per-iteration measurements (the dots of Fig. 7 and Fig. 8).
struct IterationRecord {
  std::size_t index{0};
  /// CPU share this iteration executed with.
  double cpu_ratio{0.0};
  /// Per-side chunk completion times, measured from iteration start.
  Seconds cpu_time{0.0};
  Seconds gpu_time{0.0};
  /// Wall time of the whole iteration (including the merge step).
  Seconds duration{0.0};
  Joules gpu_energy{0.0};
  Joules cpu_energy{0.0};
  [[nodiscard]] Joules total_energy() const { return gpu_energy + cpu_energy; }
  /// DMA copy-engine activity within the iteration: time a transfer was in
  /// flight, and the part of it that ran concurrently with a kernel.  Both
  /// are zero for compute-only iterations; on the synchronous stack
  /// overlap stays zero (the host blocks, so the device FIFO is empty
  /// while the engine runs).
  Seconds copy_busy_time{0.0};
  Seconds overlap_time{0.0};
  /// Division decision taken after this iteration (if the tier is on).
  DivisionAction division_action{DivisionAction::kHold};
  /// Fault-layer events logged during this iteration (0 without injector).
  std::size_t fault_events{0};
  /// The iteration was affected by a reroute, exhausted retries, a watchdog
  /// trip, or a thermal-throttle episode — its times are non-informative.
  bool degraded{false};
};

struct ExperimentResult {
  std::string workload;
  std::string policy;
  Seconds exec_time{0.0};
  Joules gpu_energy{0.0};  // meter 2
  Joules cpu_energy{0.0};  // meter 1
  [[nodiscard]] Joules total_energy() const { return gpu_energy + cpu_energy; }

  /// GPU card idle power at the driver-default (lowest) clocks; the "idle
  /// energy" term of the paper's dynamic-energy accounting is
  /// gpu_idle_power * exec_time.
  Watts gpu_idle_power{0.0};
  [[nodiscard]] Joules gpu_dynamic_energy() const {
    return gpu_energy - gpu_idle_power * exec_time;
  }

  /// CPU energy burnt busy-waiting on the GPU and the time spent doing so.
  Joules cpu_spin_energy{0.0};
  Seconds cpu_spin_time{0.0};
  /// Spin time creditable to the Fig. 6c emulation: the paper conservatively
  /// assumes the CPU cannot be throttled around GPU communications (kernel
  /// launching/ending), so a guard window per launch is excluded.
  Seconds cpu_credited_spin_time{0.0};
  Joules cpu_credited_spin_energy{0.0};
  /// CPU-side power of the spin loop priced at the lowest P-state.
  Watts cpu_spin_power_lowest{0.0};
  /// Fig. 6c emulation: total energy if the creditable spin phases had run
  /// at the lowest CPU frequency (Section VII-A's emulated scenario).
  [[nodiscard]] Joules emulated_cpu_throttle_energy() const {
    return total_energy() - cpu_credited_spin_energy +
           cpu_spin_power_lowest * cpu_credited_spin_time;
  }

  /// Division ratio after the final iteration.
  double final_ratio{0.0};
  /// Iteration index after which the division controller first held its
  /// ratio twice in a row (size_t(-1) if it never converged).
  std::size_t convergence_iteration{static_cast<std::size_t>(-1)};

  bool verified{false};
  /// True when verification was not performed (disabled or truncated run).
  bool verify_skipped{false};
  /// Retained per-record logs.  How much is retained follows
  /// `RunOptions::record` (full for single runs, counters-only for
  /// campaigns); the *_count fields below are exact regardless of retention.
  std::vector<IterationRecord> iterations;
  std::vector<sim::TraceSample> trace;
  std::vector<ScalerDecision> scaler_decisions;
  std::vector<GovernorDecision> governor_decisions;
  /// Exact totals, independent of the retention mode.
  std::size_t iteration_count{0};
  std::uint64_t scaler_decision_count{0};
  std::uint64_t governor_decision_count{0};
  /// Iterations whose division decision actually moved the ratio (!= hold).
  std::uint64_t division_moves{0};
  std::size_t fault_event_count{0};
  std::uint64_t gpu_frequency_transitions{0};
  /// Retained fault-event log (empty without an injector; truncated per
  /// `RunOptions::record` — fault_event_count holds the exact total).
  std::vector<sim::FaultEvent> fault_events;
  /// Iterations whose measurements were distorted by faults.
  std::size_t degraded_iterations{0};
  /// Times the per-iteration watchdog fired (hardened runs keep waiting up
  /// to `HardeningParams::max_watchdog_trips`; un-hardened runs throw).
  std::uint64_t watchdog_trips{0};
};

struct RunOptions {
  /// Defer fault-injector installation until the start of iteration K
  /// (0 = install before setup, the historical behaviour).  Lets fault-seed
  /// sweeps share a bit-identical fault-free warm-up prefix that the batch
  /// campaign engine memoizes; a no-op when no fault channel is active.
  std::size_t faults_active_from{0};
  /// Model-only execution (cudalite::ComputeMode::kModelOnly): skip the
  /// real kernel/host data computation and drive the simulation model
  /// alone.  Every simulated charge, fault draw and controller decision is
  /// bit-identical to a full run; only `verified` cannot be computed (data
  /// buffers are never written), so finish() reports verify_skipped.  The
  /// batch campaign engine memoizes one real verification per workload and
  /// patches the report instead.
  bool model_only{false};
  /// Record a periodic platform trace (Fig. 5).
  bool record_trace{false};
  Seconds trace_period{1.0};
  /// Check results against the scalar reference after the run.
  bool verify{true};
  /// Thread-pool size for real kernel execution (0 = hardware concurrency).
  std::size_t pool_workers{0};
  /// Override the workload's iteration count (0 = workload default).
  std::size_t max_iterations{0};
  /// Model the synchronous (spinning) CUDA stack; false models the
  /// asynchronous hypothetical of Section VII-A.
  bool sync_spin{true};
  /// Guard window excluded from the Fig. 6c emulation around every kernel
  /// launch (the paper's "cannot throttle while communicating" assumption).
  Seconds emulation_guard_per_launch{0.5};
  /// Fault-injection configuration.  The injector is installed only when at
  /// least one rate/mtbf is non-zero, so the default is a strict no-op:
  /// joules and traces stay bit-identical to the fault-free build.
  sim::FaultConfig faults{};
  /// Retention policy for the per-record logs (iterations, scaler/governor
  /// decisions, divider history, fault events).  Pure telemetry — never
  /// feeds control, so joules/decisions are bit-identical across modes.
  /// Campaigns override this to counters-only (see campaign.h).
  RecordOptions record{};
  /// Write a controller checkpoint (scaler weights, divider state, virtual
  /// time) every N iterations via the atomic snapshot writer; 0 disables.
  /// Checkpoints are pure observation — they never feed back into the run,
  /// so results are bit-identical at any cadence (proven by the bench's
  /// `journaled_reports_identical` invariant).
  std::size_t checkpoint_every{0};
  /// Directory for periodic checkpoints (must exist; empty disables).
  std::string checkpoint_dir;
  /// File stem of this run's checkpoint: `<dir>/<tag>.ggsn`.
  std::string checkpoint_tag{"run"};
};

/// Throwing failure mode of a run on a faulty platform: an un-hardened
/// policy whose iteration never completes (the DNF outcome the ablation
/// reports).
class ExperimentAborted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Run `workload` under `policy` on a fresh simulated testbed.
[[nodiscard]] ExperimentResult run_experiment(workloads::Workload& workload,
                                              const Policy& policy,
                                              const RunOptions& options = {});

/// Convenience: construct-by-name, run, return.
[[nodiscard]] ExperimentResult run_experiment(const std::string& workload_name,
                                              const Policy& policy,
                                              const RunOptions& options = {});

/// Resumable form of run_experiment: the identical run decomposed into
/// start() / step_iteration() / finish() so callers can observe, snapshot
/// and fork a run at iteration boundaries.  run_experiment() is a thin
/// wrapper around run(); the batch campaign engine drives the pieces
/// directly (model-only cells, warm-up prefix forking).
class ExperimentEngine {
 public:
  ExperimentEngine(workloads::Workload& workload, const Policy& policy,
                   const RunOptions& options = {});
  ~ExperimentEngine();
  ExperimentEngine(const ExperimentEngine&) = delete;
  ExperimentEngine& operator=(const ExperimentEngine&) = delete;

  /// Build platform/controllers, run workload setup, take the start-of-run
  /// energy snapshot.  Must be the first call.
  void start();
  /// Advance one iteration; requires start() and iteration() < total_iterations().
  void step_iteration();
  /// Iterations completed so far.
  [[nodiscard]] std::size_t iteration() const { return iter_; }
  /// Iterations this run will execute (valid after start()).
  [[nodiscard]] std::size_t total_iterations() const { return n_iters_; }
  /// Teardown + final accounting + verification; call once, after the last
  /// iteration.
  [[nodiscard]] ExperimentResult finish();
  /// start() + every iteration + finish(), i.e. exactly run_experiment().
  [[nodiscard]] ExperimentResult run();

  /// Snapshot the entire run at the current iteration boundary: virtual
  /// clock, device integrals, monitoring windows, controller state, pending
  /// tick phases and partial accounting.  Legal only before the fault
  /// injector is installed (use RunOptions::faults_active_from to delay it)
  /// and without a trace recorder.  The run continues unperturbed after
  /// saving — observation only.
  void save_prefix(common::SnapshotWriter& w);
  /// Restore a save_prefix() snapshot into a freshly start()ed engine with
  /// the same workload/policy/options (late-binding knobs — fault seeds —
  /// may differ).  The engine jumps to the saved iteration boundary and
  /// continues bit-identically to a run that simulated the prefix itself.
  void restore_prefix(common::SnapshotReader& r);

  [[nodiscard]] sim::Platform& platform() { return *platform_; }

 private:
  void install_faults();
  void write_checkpoint() const;

  workloads::Workload* workload_;
  const Policy* policy_;
  RunOptions options_;

  std::unique_ptr<sim::Platform> platform_;
  std::unique_ptr<cudalite::Runtime> rt_;
  sim::FaultInjector* injector_{nullptr};
  std::unique_ptr<cudalite::NvmlDevice> nvml_;
  std::unique_ptr<cudalite::NvSettings> settings_;
  std::unique_ptr<GpuFrequencyScaler> scaler_;
  std::unique_ptr<CpuGovernor> governor_;
  std::unique_ptr<Divider> divider_;
  std::unique_ptr<sim::TraceRecorder> tracer_;
  std::optional<cudalite::Stream> stream_;

  ExperimentResult result_;
  DecisionRecorder<IterationRecord> iteration_log_;
  std::size_t iter_{0};
  std::size_t n_iters_{0};
  double ratio_{0.0};
  int watchdog_trips_left_{0};
  sim::EnergySnapshot run_start_;
  double spin_time_start_{0.0};
  Joules spin_energy_start_{0.0};
  bool started_{false};
  bool finished_{false};
};

}  // namespace gg::greengpu
