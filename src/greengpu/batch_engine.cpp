#include "src/greengpu/batch_engine.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/common/annotations.h"
#include "src/common/job_pool.h"
#include "src/common/snapshot.h"
#include "src/workloads/registry.h"

namespace gg::greengpu {

namespace {

/// Everything one live cell owns.  The engine holds pointers into the
/// workload, so the workload member is declared first — members destroy in
/// reverse declaration order, tearing the engine down before its workload.
struct CellState {
  std::size_t index{0};
  workloads::WorkloadPtr workload;
  RunOptions options;
  std::unique_ptr<ExperimentEngine> engine;
  /// This cell is the row's verify donor: it runs real kernels and its
  /// verification outcome is memoized for the model-only cells.
  bool full_compute{false};
};

/// Lockstep stepper: one sweep advances every live cell by one iteration
/// until all cells run out.  Cells march down the iteration axis together
/// (the SoA orientation of the batch), over a contiguous pointer array.
/// Per-cell work inside the sweep is allocation-free — machine-checked by
/// greengpu-lint's batch-loop-alloc rule; the per-cell containers are built
/// by the caller before stepping begins.
GG_HOT_BATCH void step_lockstep(CellState* const* live, std::size_t n) {
  bool any = n > 0;
  while (any) {
    any = false;
    for (std::size_t k = 0; k < n; ++k) {
      ExperimentEngine& e = *live[k]->engine;
      if (e.iteration() < e.total_iterations()) {
        // GG_LINT_ALLOW(hot-alloc-transitive): step_iteration allocates only
        // on the watchdog-abort throw path (the diagnostic string of
        // ExperimentAborted); the per-iteration fast path is allocation-free
        // (PR 7 batch-equivalence bench).
        e.step_iteration();
        any = any || e.iteration() < e.total_iterations();
      }
    }
  }
}

}  // namespace

BatchCampaignEngine::BatchCampaignEngine(const CampaignPlan& plan,
                                         const RunOptions& options, std::size_t jobs)
    : plan_(&plan), options_(&options), jobs_(jobs), done_(plan.total(), 0) {}

void BatchCampaignEngine::skip_completed(std::vector<char> done) {
  if (done.size() != plan_->total()) {
    throw std::invalid_argument("BatchCampaignEngine: skip_completed size mismatch");
  }
  done_ = std::move(done);
}

void BatchCampaignEngine::run(std::vector<CampaignCell>& cells, const Hooks& hooks) {
  const std::size_t policy_count = plan_->policies.size();
  const std::size_t total = plan_->total();
  if (cells.size() != total) {
    throw std::invalid_argument("BatchCampaignEngine: cells size mismatch");
  }
  if (total == 0) return;

  const std::size_t stride = plan_->replicate_stride == 0 ? 1 : plan_->replicate_stride;
  // Verification strategy for the row's model-only cells (scalar-path
  // semantics reproduced exactly):
  //   * base model_only: scalar reports verified=false / skipped=true for
  //     every cell — the raw model-only result already says that; no patch.
  //   * verify off: scalar reports verified=true / skipped=true; patch that.
  //   * verify on: one full-compute donor per row; patch its
  //     (verified, verify_skipped) pair — truncated runs (max_iterations)
  //     flow through the donor as verified=true / skipped=true, exactly as
  //     scalar cells would report themselves.
  const bool base_model_only = options_->model_only;
  const bool need_verify = options_->verify && !base_model_only;
  // Warm-up prefix forking engages per replicate group when the group's
  // cells differ only in their late-binding fault seed: the injector joins
  // at iteration W > 0, so iterations 0..W-1 are bit-identical across the
  // group and are simulated once.  save_prefix rejects trace recorders, so
  // traced runs fall back to cold starts.
  const std::size_t warmup = options_->faults_active_from;
  const bool forking = stride > 1 && warmup > 0 && options_->faults.any_faults() &&
                       !options_->record_trace;

  stats_ = Stats{};
  std::mutex stats_mutex;

  common::JobPool pool(jobs_);
  pool.run_batches(total, policy_count, [&](std::size_t first, std::size_t last) {
    const std::size_t w = first / policy_count;
    Stats row;

    // Materialize the row's pending cells in flat-index order.  Options are
    // finalized (seed fork, then the caller's customize hook) before the
    // engine is constructed, because ExperimentEngine copies them.
    std::vector<std::unique_ptr<CellState>> states;
    states.reserve(last - first);
    for (std::size_t i = first; i < last; ++i) {
      if (done_[i]) continue;
      auto s = std::make_unique<CellState>();
      s->index = i;
      s->options = *options_;
      if (s->options.faults.any_faults()) {
        s->options.faults.seed = campaign_cell_seed(s->options.faults.seed, i);
      }
      if (hooks.customize) hooks.customize(i, s->options);
      s->full_compute = need_verify && states.empty();
      s->options.model_only = !s->full_compute;
      s->workload = workloads::make_workload(plan_->workloads[w]);
      s->engine = std::make_unique<ExperimentEngine>(
          *s->workload, plan_->policies[s->index % policy_count], s->options);
      states.push_back(std::move(s));
    }
    if (states.empty()) return;

    // Start every cell; within a forkable replicate group, the group's
    // first pending cell simulates the shared warm-up once, snapshots it,
    // and the rest restore from the snapshot at iteration W.
    std::size_t k = 0;
    while (k < states.size()) {
      // The replicate group of states[k]: pending cells with the same
      // (workload row, policy-group) coordinates.
      const std::size_t group = (states[k]->index - first) / stride;
      std::size_t group_end = k + 1;
      while (group_end < states.size() &&
             (states[group_end]->index - first) / stride == group) {
        ++group_end;
      }
      states[k]->engine->start();
      if (forking && group_end - k > 1) {
        ExperimentEngine& donor = *states[k]->engine;
        const std::size_t fork_at = std::min(warmup, donor.total_iterations());
        while (donor.iteration() < fork_at) donor.step_iteration();
        common::SnapshotWriter prefix;
        donor.save_prefix(prefix);
        const std::string context = "warm-up prefix of " + plan_->workloads[w] +
                                    " group " + std::to_string(group);
        for (std::size_t m = k + 1; m < group_end; ++m) {
          states[m]->engine->start();
          auto reader = common::SnapshotReader::from_payload(prefix.payload(), context);
          states[m]->engine->restore_prefix(reader);
          ++row.forked_cells;
          row.prefix_iterations_saved += fork_at;
        }
      } else {
        for (std::size_t m = k + 1; m < group_end; ++m) states[m]->engine->start();
      }
      k = group_end;
    }

    // Lockstep over the whole row: contiguous pointer array, one iteration
    // per live cell per sweep.  Fork donors enter already at iteration W;
    // the stepper only advances cells that still have iterations left.
    std::vector<CellState*> live;
    live.reserve(states.size());
    for (const auto& s : states) live.push_back(s.get());
    step_lockstep(live.data(), live.size());

    // Finish and publish in flat-index order: the verify donor is the
    // lowest pending index, so its memo is set before any model cell needs
    // the patch.
    bool memo_verified = false;
    bool memo_skipped = false;
    for (auto& s : states) {
      ExperimentResult result = s->engine->finish();
      if (s->full_compute) {
        memo_verified = result.verified;
        memo_skipped = result.verify_skipped;
        ++row.full_runs;
      } else {
        ++row.model_runs;
        if (!base_model_only) {
          result.verified = need_verify ? memo_verified : true;
          result.verify_skipped = need_verify ? memo_skipped : true;
        }
      }
      cells[s->index].result = std::move(result);
      if (hooks.on_done) hooks.on_done(s->index, cells[s->index].result);
    }

    std::lock_guard<std::mutex> lock(stats_mutex);
    stats_.full_runs += row.full_runs;
    stats_.model_runs += row.model_runs;
    stats_.forked_cells += row.forked_cells;
    stats_.prefix_iterations_saved += row.prefix_iterations_saved;
  });
}

}  // namespace gg::greengpu
