#include "src/greengpu/division.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gg::greengpu {

namespace {
/// Relative tolerance under which tc and tg count as "finishing
/// approximately at the same time".
constexpr double kTimeTolerance = 1e-3;

bool roughly_equal(Seconds a, Seconds b) {
  const double hi = std::max(a.get(), b.get());
  if (hi <= 0.0) return true;
  return std::fabs(a.get() - b.get()) <= kTimeTolerance * hi;
}
}  // namespace

DivisionDecision division_step(const DivisionParams& params, double ratio, Seconds tc,
                               Seconds tg) {
  if (tc < Seconds{0.0} || tg < Seconds{0.0}) {
    throw std::invalid_argument("division_step: negative time");
  }
  DivisionDecision d{ratio, DivisionAction::kHold};
  if (roughly_equal(tc, tg)) return d;

  const bool cpu_faster = tc < tg;
  const double candidate =
      cpu_faster ? std::min(ratio + params.step, params.max_ratio)
                 : std::max(ratio - params.step, params.min_ratio);
  if (candidate == ratio) {
    d.action = DivisionAction::kHoldAtBound;
    return d;
  }

  // Oscillation safeguard: linearly scale both execution times to the
  // candidate allocation; if the predicted ordering flips, moving would
  // bounce between two grid points, so keep the current division.
  // Prediction is only possible when both sides executed a non-zero share.
  if (params.safeguard && ratio > 0.0 && ratio < 1.0) {
    const double tc_pred = tc.get() * (candidate / ratio);
    const double tg_pred = tg.get() * ((1.0 - candidate) / (1.0 - ratio));
    const bool cpu_faster_pred = tc_pred < tg_pred;
    if (cpu_faster_pred != cpu_faster) {
      d.action = DivisionAction::kHoldSafeguard;
      return d;
    }
  }

  d.ratio = candidate;
  d.action = cpu_faster ? DivisionAction::kIncreaseCpu : DivisionAction::kDecreaseCpu;
  return d;
}

DivisionController::DivisionController(DivisionParams params)
    : params_(params), ratio_(params.initial_ratio) {
  if (params_.step <= 0.0 || params_.step >= 1.0) {
    throw std::invalid_argument("DivisionParams: step must be in (0,1)");
  }
  if (params_.min_ratio < 0.0 || params_.max_ratio > 1.0 ||
      params_.min_ratio >= params_.max_ratio) {
    throw std::invalid_argument("DivisionParams: bad ratio bounds");
  }
  if (params_.initial_ratio < params_.min_ratio || params_.initial_ratio > params_.max_ratio) {
    throw std::invalid_argument("DivisionParams: initial ratio out of bounds");
  }
}

DivisionDecision DivisionController::update(Seconds cpu_time, Seconds gpu_time) {
  const DivisionDecision d = division_step(params_, ratio_, cpu_time, gpu_time);
  if (d.ratio == ratio_) {
    ++hold_streak_;
  } else {
    hold_streak_ = 0;
  }
  ratio_ = d.ratio;
  history_.push(d);
  return d;
}

DivisionDecision DivisionController::hold_degraded() {
  const DivisionDecision d{ratio_, DivisionAction::kHoldDegraded};
  history_.push(d);
  return d;
}

void DivisionController::reset() {
  ratio_ = params_.initial_ratio;
  hold_streak_ = 0;
  history_.clear();
}

namespace {
void save_division_decision(common::SnapshotWriter& w, const DivisionDecision& d) {
  w.f64(d.ratio);
  w.u8(static_cast<std::uint8_t>(d.action));
}

DivisionDecision load_division_decision(common::SnapshotReader& r) {
  DivisionDecision d;
  d.ratio = r.f64();
  d.action = static_cast<DivisionAction>(r.u8());
  return d;
}
}  // namespace

void DivisionController::save(common::SnapshotWriter& w) const {
  w.f64(ratio_);
  w.u64(static_cast<std::uint64_t>(hold_streak_));
  history_.save(w, save_division_decision);
}

void DivisionController::load(common::SnapshotReader& r) {
  ratio_ = r.f64();
  hold_streak_ = static_cast<int>(r.u64());
  history_.load(r, load_division_decision);
}

}  // namespace gg::greengpu
