// Algorithm 1: the online-learning GPU frequency-scaling daemon.
//
// Periodically reads GPU core/memory utilizations through the NVML-style
// interface, updates the core-memory pair weight table (Table I + Eq. 1-4)
// and enforces the argmax pair through the nvidia-settings-style actuator —
// exactly the role of the paper's background Python daemon.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/stats.h"
#include "src/cudalite/nvml.h"
#include "src/cudalite/nvsettings.h"
#include "src/greengpu/loss.h"
#include "src/greengpu/params.h"
#include "src/greengpu/weight_table.h"
#include "src/sim/event_queue.h"

namespace gg::greengpu {

/// One record of what the scaler saw and decided (for traces and tests).
struct ScalerDecision {
  Seconds time{0.0};
  double core_util{0.0};  // raw measurements, as fractions in [0, 1]
  double mem_util{0.0};
  double filtered_core_util{0.0};  // after the optional EWMA pre-filter
  double filtered_mem_util{0.0};
  PairIndex chosen{};
  /// False when a hardened step held the weights because the sample was
  /// missing or stale (fault layer active).
  bool sample_ok{true};
  /// False when the chosen pair could not be applied this step (write
  /// rejected/clamped/throttled); an asynchronous retry may still land it.
  bool actuation_ok{true};
};

class GpuFrequencyScaler {
 public:
  /// Binds the controller to the monitoring and actuation interfaces.
  GpuFrequencyScaler(cudalite::NvmlDevice& nvml, cudalite::NvSettings& settings,
                     WmaParams params);

  /// One Algorithm 1 step: read utilizations, update weights, enforce argmax.
  /// Returns the decision taken.
  ScalerDecision step(Seconds now);

  /// Start periodic invocation on the queue (first step after one interval).
  void attach(sim::EventQueue& queue);
  /// Stop periodic invocation.
  void detach();

  [[nodiscard]] const WeightTable& table() const { return table_; }
  [[nodiscard]] const WmaParams& params() const { return params_; }
  [[nodiscard]] const std::vector<ScalerDecision>& decisions() const { return decisions_; }
  [[nodiscard]] std::uint64_t steps() const { return steps_; }
  /// Hardened-path counters (for tests and the ablation).
  [[nodiscard]] std::uint64_t held_steps() const { return held_steps_; }
  [[nodiscard]] std::uint64_t actuation_failures() const { return actuation_failures_; }

  /// Forget all learned state (weights back to uniform).
  void reset();

 private:
  void arm(sim::EventQueue& queue);
  /// Enforce `pair` through the actuator, with bounded immediate re-tries
  /// and (when attached + hardened) asynchronous backoff re-tries.  Returns
  /// true when the pair is applied or in flight (delayed write).
  bool actuate(PairIndex pair);
  void schedule_retry(PairIndex pair, int attempt);

  cudalite::NvmlDevice* nvml_;
  cudalite::NvSettings* settings_;
  WmaParams params_;
  std::vector<double> core_umean_;
  std::vector<double> mem_umean_;
  Ewma core_filter_;
  Ewma mem_filter_;
  WeightTable table_;
  std::vector<ScalerDecision> decisions_;
  std::uint64_t steps_{0};
  std::uint64_t held_steps_{0};
  std::uint64_t actuation_failures_{0};
  sim::EventHandle next_;
  sim::EventHandle retry_;
  sim::EventQueue* attached_queue_{nullptr};
};

}  // namespace gg::greengpu
