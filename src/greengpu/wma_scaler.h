// Algorithm 1: the online-learning GPU frequency-scaling daemon.
//
// Periodically reads GPU core/memory utilizations through the NVML-style
// interface, updates the core-memory pair weight table (Table I + Eq. 1-4)
// and enforces the argmax pair through the nvidia-settings-style actuator —
// exactly the role of the paper's background Python daemon.
//
// Two step implementations share every observable behaviour:
//
//  * the fused fast path (default) — utilization arrives as integer
//    percent, so the Eq. 1/2 losses per level are 101-row lookups built at
//    construction (loss.h: QuantizedLossTable, rows pre-blended by the
//    Eq. 3 weights); the Eq. 4 decay, renormalization and argmax run as one
//    fused table pass with preallocated scratch and zero heap allocations
//    per step;
//  * the reference path (`WmaParams::reference_impl`) — the straight-line
//    transcription of the equations, kept as the oracle the equivalence
//    suite and the microbenchmarks compare against.
//
// The decision stream is bit-identical between the two, faults included
// (tests/greengpu/scaler_fastpath_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/stats.h"
#include "src/cudalite/nvml.h"
#include "src/cudalite/nvsettings.h"
#include "src/greengpu/loss.h"
#include "src/greengpu/params.h"
#include "src/greengpu/telemetry.h"
#include "src/greengpu/weight_table.h"
#include "src/sim/event_queue.h"

namespace gg::greengpu {

/// One record of what the scaler saw and decided (for traces and tests).
struct ScalerDecision {
  Seconds time{0.0};
  double core_util{0.0};  // raw measurements, as fractions in [0, 1]
  double mem_util{0.0};
  double filtered_core_util{0.0};  // after the optional EWMA pre-filter
  double filtered_mem_util{0.0};
  PairIndex chosen{};
  /// False when a hardened step held the weights because the sample was
  /// missing or stale (fault layer active).
  bool sample_ok{true};
  /// False when the chosen pair could not be applied this step (write
  /// rejected/clamped/throttled); an asynchronous retry may still land it.
  bool actuation_ok{true};
  /// Copy-engine busy/overlap fractions observed this step, as fractions in
  /// [0, 1].  Zero unless `WmaParams::observe_copy_engine` is on (new
  /// fields go at the end: decisions are aggregate-initialized elsewhere).
  double copy_busy_util{0.0};
  double overlap_util{0.0};
};

class GpuFrequencyScaler {
 public:
  /// Binds the controller to the monitoring and actuation interfaces.
  GpuFrequencyScaler(cudalite::NvmlDevice& nvml, cudalite::NvSettings& settings,
                     WmaParams params);

  /// One Algorithm 1 step: read utilizations, update weights, enforce argmax.
  /// Returns the decision taken.
  ScalerDecision step(Seconds now);

  /// Start periodic invocation on the queue (first step after one interval).
  void attach(sim::EventQueue& queue);
  /// Start periodic invocation with the first step at the absolute instant
  /// `first_step` (must be >= queue.now()); subsequent steps follow every
  /// `interval`.  Used when restoring a saved run: re-arms the tick train at
  /// the exact phase the donor run's pending tick had, so the decision
  /// stream continues bit-identically.
  void attach_at(sim::EventQueue& queue, Seconds first_step);
  /// Stop periodic invocation.
  void detach();

  [[nodiscard]] const WeightTable& table() const { return table_; }
  [[nodiscard]] const WmaParams& params() const { return params_; }
  /// The retained decision log (everything in kFull record mode — the
  /// default; empty in kRing/kCounters modes, see decisions_snapshot()).
  [[nodiscard]] const std::vector<ScalerDecision>& decisions() const {
    return decisions_.log();
  }
  /// Retained decisions, oldest first, under any record mode.
  [[nodiscard]] std::vector<ScalerDecision> decisions_snapshot() const {
    return decisions_.snapshot();
  }
  /// Decisions taken over the scaler's lifetime, independent of retention.
  [[nodiscard]] std::uint64_t decision_count() const { return decisions_.total(); }
  /// Replace the decision-retention policy (clears retained decisions).
  void set_record(RecordOptions opts) { decisions_ = DecisionRecorder<ScalerDecision>(opts); }
  [[nodiscard]] std::uint64_t steps() const { return steps_; }
  /// Hardened-path counters (for tests and the ablation).
  [[nodiscard]] std::uint64_t held_steps() const { return held_steps_; }
  [[nodiscard]] std::uint64_t actuation_failures() const { return actuation_failures_; }

  /// Forget all learned state (weights back to uniform).
  void reset();

  /// Serialize every piece of learned/derived state (weights, EWMA
  /// filters, running argmax, counters, retained decisions).  A scaler
  /// restored from this snapshot continues the exact decision stream the
  /// saved one would have produced.
  void save(common::SnapshotWriter& w) const;
  /// Restore into a scaler built with the SAME WmaParams (parameters are
  /// configuration; mismatched table dimensions or retention policy throw
  /// common::SnapshotError with state unchanged where detectable).
  void load(common::SnapshotReader& r);

 private:
  void arm(sim::EventQueue& queue);
  ScalerDecision step_fast(Seconds now);
  ScalerDecision step_reference(Seconds now);
  /// Enforce `pair` through the actuator, with bounded immediate re-tries
  /// and (when attached + hardened) asynchronous backoff re-tries.  Returns
  /// true when the pair is applied or in flight (delayed write).
  bool actuate(PairIndex pair);
  void schedule_retry(PairIndex pair, int attempt);

  cudalite::NvmlDevice* nvml_;
  cudalite::NvSettings* settings_;
  WmaParams params_;
  std::vector<double> core_umean_;
  std::vector<double> mem_umean_;
  Ewma core_filter_;
  Ewma mem_filter_;
  WeightTable table_;
  // --- fast-path state -------------------------------------------------
  /// Pre-blended 101-row loss tables (phi * core loss, (1-phi) * mem loss).
  QuantizedLossTable core_loss_q_;
  QuantizedLossTable mem_loss_q_;
  /// Precomputed Eq. 4 constant.
  double one_minus_beta_;
  /// The quantized rows apply only when the EWMA pre-filter passes samples
  /// through unchanged (alpha == 1, the default); otherwise the fast path
  /// fills the preallocated scratch rows instead.
  bool quantized_applies_;
  std::vector<double> scratch_core_;
  std::vector<double> scratch_mem_;
  /// Running argmax maintained by the fused update (what a hold step
  /// re-enforces without rescanning the table).
  PairIndex argmax_{0, 0};
  // ---------------------------------------------------------------------
  DecisionRecorder<ScalerDecision> decisions_;
  std::uint64_t steps_{0};
  std::uint64_t held_steps_{0};
  std::uint64_t actuation_failures_{0};
  sim::EventHandle next_;
  sim::EventHandle retry_;
  sim::EventQueue* attached_queue_{nullptr};
};

}  // namespace gg::greengpu
