// Model-based division algorithms.
//
// Section V-B positions the step heuristic as a trade-off between solution
// quality and runtime overhead, and notes GreenGPU "can be integrated with
// other sophisticated global optimal algorithms ... at the cost of more
// complicated implementation and higher runtime overheads".  Two such
// algorithms:
//
//  * `ProfilingDivider` — the Qilin-style adaptive mapping of Luk et al.
//    [16] (Related Work): estimate per-side processing *rates* from the
//    measured chunk times, then jump straight to the equal-finish share
//    r* = Rc / (Rc + Rg).  Minimizes execution time.
//
//  * `EnergyModelDivider` — fits a two-parameter energy model
//    E(r) ~ P_sys * T(r) + c_cpu * r  (makespan cost plus the extra CPU
//    activity cost of the CPU share) to the observed iterations by least
//    squares, and picks the share minimizing *predicted energy* on a fine
//    grid.  Minimizes energy rather than time — the objective GreenGPU
//    actually cares about.
#pragma once

#include <memory>
#include <optional>

#include "src/common/stats.h"
#include "src/greengpu/division.h"

namespace gg::greengpu {

struct ProfilingDividerParams {
  /// Share used for the first (profiling) iteration; must be in (0, 1) so
  /// both sides produce a rate sample.
  double probe_ratio{0.30};
  double min_ratio{0.0};
  double max_ratio{0.95};
  /// EWMA weight for refreshing the rate estimates with new measurements.
  double rate_alpha{0.5};
  /// Relative ratio change below which the divider reports convergence.
  double settle_tolerance{0.02};
};

class ProfilingDivider final : public Divider {
 public:
  explicit ProfilingDivider(ProfilingDividerParams params = {});

  [[nodiscard]] std::string_view name() const override { return "qilin-profiling"; }
  [[nodiscard]] double ratio() const override { return ratio_; }
  DivisionDecision update(const IterationFeedback& feedback) override;
  [[nodiscard]] bool converged(int streak = 2) const override {
    return settle_streak_ >= streak;
  }
  void reset() override;

  void save(common::SnapshotWriter& w) const override;
  void load(common::SnapshotReader& r) override;

  /// Estimated processing rates (share of the iteration per second); zero
  /// until the corresponding side has been observed.
  [[nodiscard]] double cpu_rate() const { return cpu_rate_ ? cpu_rate_->value() : 0.0; }
  [[nodiscard]] double gpu_rate() const { return gpu_rate_ ? gpu_rate_->value() : 0.0; }

 private:
  ProfilingDividerParams params_;
  double ratio_;
  std::optional<Ewma> cpu_rate_;
  std::optional<Ewma> gpu_rate_;
  int settle_streak_{0};
};

struct EnergyModelDividerParams {
  /// Shares used for the initial probing iterations (need >= 2 distinct
  /// interior values to identify the two model parameters).
  double probe_low{0.15};
  double probe_high{0.45};
  double min_ratio{0.0};
  double max_ratio{0.95};
  /// Grid resolution of the argmin search.
  double search_step{0.01};
  /// EWMA weight for the rate estimates.
  double rate_alpha{0.5};
  /// Relative ratio change below which the divider reports convergence.
  double settle_tolerance{0.02};
};

class EnergyModelDivider final : public Divider {
 public:
  explicit EnergyModelDivider(EnergyModelDividerParams params = {});

  [[nodiscard]] std::string_view name() const override { return "energy-model"; }
  [[nodiscard]] double ratio() const override { return ratio_; }
  DivisionDecision update(const IterationFeedback& feedback) override;
  [[nodiscard]] bool converged(int streak = 2) const override {
    return settle_streak_ >= streak;
  }
  void reset() override;

  void save(common::SnapshotWriter& w) const override;
  void load(common::SnapshotReader& r) override;

  /// Fitted model parameters (0 until enough observations).
  [[nodiscard]] double fitted_system_power() const { return p_sys_; }
  [[nodiscard]] double fitted_cpu_share_cost() const { return c_cpu_; }

  /// Predicted makespan at share r from the current rate estimates.
  [[nodiscard]] double predict_makespan(double r) const;
  /// Predicted iteration energy at share r from the fitted model.
  [[nodiscard]] double predict_energy(double r) const;

 private:
  struct Observation {
    double ratio;
    double makespan;
    double energy;
  };

  void refit();

  EnergyModelDividerParams params_;
  double ratio_;
  int iteration_{0};
  std::optional<Ewma> cpu_rate_;
  std::optional<Ewma> gpu_rate_;
  std::vector<Observation> observations_;
  double p_sys_{0.0};
  double c_cpu_{0.0};
  int settle_streak_{0};
};

/// Divider selector for policies and the CLI.
enum class DividerKind {
  kStep,         // the paper's tier 1
  kProfiling,    // Qilin-style time balancing
  kEnergyModel,  // least-squares energy argmin
};

[[nodiscard]] std::string_view to_string(DividerKind kind);
[[nodiscard]] DividerKind divider_from_string(std::string_view name);

/// Factory; `step_params` configures the kStep divider, the model dividers
/// use their own defaults.
[[nodiscard]] std::unique_ptr<Divider> make_divider(DividerKind kind,
                                                    const DivisionParams& step_params);

}  // namespace gg::greengpu
