// Umbrella header: the whole GreenGPU public API in one include.
//
//   #include "src/greengpu/greengpu.h"
//
//   auto result = gg::greengpu::run_experiment(
//       "kmeans", gg::greengpu::Policy::green_gpu());
//
// Layers (see docs/ARCHITECTURE.md):
//   - params.h / loss.h / weight_table.h  — the paper's Section V machinery
//   - wma_scaler.h                        — Algorithm 1 as a daemon
//   - cpu_governor.h                      — ondemand and friends
//   - division.h / model_dividers.h       — tier 1 and its alternatives
//   - multi_division.h / multi_runner.h   — CPU + N GPUs
//   - policy.h / runner.h                 — experiments
//   - campaign.h                          — result matrices and reports
#pragma once

#include "src/greengpu/campaign.h"
#include "src/greengpu/cpu_governor.h"
#include "src/greengpu/division.h"
#include "src/greengpu/loss.h"
#include "src/greengpu/model_dividers.h"
#include "src/greengpu/multi_division.h"
#include "src/greengpu/multi_runner.h"
#include "src/greengpu/params.h"
#include "src/greengpu/policy.h"
#include "src/greengpu/runner.h"
#include "src/greengpu/weight_table.h"
#include "src/greengpu/wma_scaler.h"

namespace gg::greengpu {

/// Library version, bumped with behavioural changes to the reproduction.
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;

}  // namespace gg::greengpu
