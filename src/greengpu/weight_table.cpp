#include "src/greengpu/weight_table.h"

#include <algorithm>
#include <stdexcept>

#include "src/common/annotations.h"
#include "src/common/snapshot.h"
#include "src/greengpu/loss.h"

namespace gg::greengpu {

namespace {
void check_dims(std::size_t n, std::size_t m) {
  if (n == 0 || m == 0) throw std::invalid_argument("WeightTable: zero levels");
}
void check_losses(const std::vector<double>& core, const std::vector<double>& mem,
                  std::size_t n, std::size_t m) {
  if (core.size() != n || mem.size() != m) {
    throw std::invalid_argument("WeightTable: loss vector size mismatch");
  }
}
}  // namespace

WeightTable::WeightTable(std::size_t core_levels, std::size_t mem_levels)
    : n_(core_levels), m_(mem_levels), w_(core_levels * mem_levels, 1.0) {
  check_dims(n_, m_);
}

double WeightTable::weight(std::size_t core, std::size_t mem) const {
  if (core >= n_ || mem >= m_) throw std::out_of_range("WeightTable: index");
  return w_[idx(core, mem)];
}

void WeightTable::update(const std::vector<double>& core_losses,
                         const std::vector<double>& mem_losses, double phi, double beta,
                         double weight_floor) {
  check_losses(core_losses, mem_losses, n_, m_);
  double max_w = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < m_; ++j) {
      const double loss = total_loss(core_losses[i], mem_losses[j], phi);
      double& w = w_[idx(i, j)];
      w = updated_weight(w, loss, beta);
      max_w = std::max(max_w, w);
    }
  }
  // Renormalize so the maximum is 1 (pure rescaling: argmax unaffected) and
  // floor tiny weights so losers can recover in bounded time.
  if (max_w > 0.0) {
    for (double& w : w_) w = std::max(w / max_w, weight_floor);
  } else {
    reset();
  }
}

GG_HOT PairIndex WeightTable::update_fused(const double* scaled_core_losses,
                                           const double* scaled_mem_losses,
                                           double one_minus_beta, double weight_floor) {
  // Pass 1 — decay.  Per cell this is the exact arithmetic of
  // updated_weight(w, total_loss(lc, lm, phi), beta): the pre-blended rows
  // supply phi*lc and (1-phi)*lm already rounded the way total_loss rounds
  // them, so loss is the same add and the decay the same multiply chain.
  double* w = w_.data();
  double max_w = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    const double ci = scaled_core_losses[i];
    double* row = w + i * m_;
    for (std::size_t j = 0; j < m_; ++j) {
      const double loss = ci + scaled_mem_losses[j];
      const double nw = row[j] * (1.0 - one_minus_beta * loss);
      row[j] = nw;
      max_w = std::max(max_w, nw);
    }
  }
  if (max_w <= 0.0) {
    reset();
    return PairIndex{0, 0};
  }
  // Pass 2 — renormalize + floor (identical expression to update()), with
  // the argmax tracked over the *post*-renorm values in the same i-major
  // scan order and with the same strict-> comparison as argmax(), so the
  // selected pair (ties toward higher frequencies) cannot differ.
  PairIndex best{0, 0};
  double best_w = 0.0;
  const std::size_t total = n_ * m_;
  for (std::size_t k = 0; k < total; ++k) {
    const double nw = std::max(w[k] / max_w, weight_floor);
    w[k] = nw;
    if (k == 0) {
      best_w = nw;
    } else if (nw > best_w) {
      best_w = nw;
      best = PairIndex{k / m_, k % m_};
    }
  }
  return best;
}

PairIndex WeightTable::argmax() const {
  PairIndex best{0, 0};
  double best_w = w_[0];
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < m_; ++j) {
      const double w = w_[idx(i, j)];
      if (w > best_w) {
        best_w = w;
        best = PairIndex{i, j};
      }
    }
  }
  return best;
}

void WeightTable::reset() { std::fill(w_.begin(), w_.end(), 1.0); }

FixedWeightTable::FixedWeightTable(std::size_t core_levels, std::size_t mem_levels)
    : n_(core_levels), m_(mem_levels), w_(core_levels * mem_levels, UQ08::one()) {
  check_dims(n_, m_);
}

UQ08 FixedWeightTable::weight(std::size_t core, std::size_t mem) const {
  if (core >= n_ || mem >= m_) throw std::out_of_range("FixedWeightTable: index");
  return w_[idx(core, mem)];
}

void FixedWeightTable::update(const std::vector<double>& core_losses,
                              const std::vector<double>& mem_losses, double phi,
                              double beta) {
  check_losses(core_losses, mem_losses, n_, m_);
  // Section VI datapath: quantize the per-pair loss to Q0.8 and apply the
  // update subtractively, w' = w - round(w * (1-beta) * loss), which a
  // shift-add unit computes exactly.  The subtractive form keeps pairs with
  // small loss differences separated where quantizing the decay *factor*
  // would collapse them (alpha_m = 0.02 produces sub-LSB factor deltas).
  const std::uint32_t beta_raw = UQ08::from_double(1.0 - beta).raw();  // (1-beta)
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < m_; ++j) {
      const double loss = total_loss(core_losses[i], mem_losses[j], phi);
      const std::uint32_t loss_raw = UQ08::from_double(loss).raw();
      auto& w = w_[idx(i, j)];
      const std::uint32_t prod = w.raw() * beta_raw * loss_raw;  // <= 2^24
      constexpr std::uint32_t kDenom = 255u * 255u;
      // Truncating divide (a shift in the real datapath): floor rounding
      // keeps pairs with adjacent loss codes separated, where
      // round-to-nearest would give both the same decrement.
      const std::uint32_t decrement = prod / kDenom;
      const std::uint32_t raw = w.raw();
      w = UQ08::from_raw(static_cast<std::uint8_t>(raw > decrement ? raw - decrement : 0));
    }
  }
  // Hardware renormalization: double every entry (a left shift) while the
  // maximum is below half scale.  Doubling preserves relative order exactly.
  for (;;) {
    std::uint8_t max_raw = 0;
    for (const auto& w : w_) max_raw = std::max(max_raw, w.raw());
    if (max_raw == 0) {
      reset();
      return;
    }
    if (max_raw > 127) return;
    for (auto& w : w_) {
      w = UQ08::from_raw(static_cast<std::uint8_t>(w.raw() * 2));
    }
  }
}

GG_HOT PairIndex FixedWeightTable::update_fused(const double* scaled_core_losses,
                                                const double* scaled_mem_losses,
                                                std::uint32_t one_minus_beta_raw) {
  // Same quantize-subtract datapath as update(), with the pair loss formed
  // from the pre-blended rows (one add, identical to total_loss) and the
  // running maximum / argmax tracked inline.
  std::uint8_t max_raw = 0;
  PairIndex best{0, 0};
  std::uint8_t best_raw = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    const double ci = scaled_core_losses[i];
    for (std::size_t j = 0; j < m_; ++j) {
      const double loss = ci + scaled_mem_losses[j];
      // GG_LINT_ALLOW(hot-alloc-transitive): UQ08::raw() is a bit accessor;
      // its basename collides with Flags::raw() and the temporary/auto
      // receivers here defeat gg-analyze's type binding.
      const std::uint32_t loss_raw = UQ08::from_double(loss).raw();
      auto& w = w_[idx(i, j)];
      const std::uint32_t prod = w.raw() * one_minus_beta_raw * loss_raw;  // <= 2^24
      constexpr std::uint32_t kDenom = 255u * 255u;
      const std::uint32_t decrement = prod / kDenom;
      const std::uint32_t raw = w.raw();
      const auto nw = static_cast<std::uint8_t>(raw > decrement ? raw - decrement : 0);
      w = UQ08::from_raw(nw);
      max_raw = std::max(max_raw, nw);
      if (idx(i, j) == 0) {
        best_raw = nw;
      } else if (nw > best_raw) {
        best_raw = nw;
        best = PairIndex{i, j};
      }
    }
  }
  if (max_raw == 0) {
    reset();
    return PairIndex{0, 0};
  }
  // Renormalization: update() doubles every entry while the maximum stays
  // below half scale, one full pass per doubling.  The shift count only
  // depends on the maximum, so fold all doublings into a single pass.  A
  // uniform left shift preserves order and ties exactly (max <= 254 after
  // it, so nothing saturates), hence the argmax tracked above still holds.
  unsigned shift = 0;
  while ((static_cast<std::uint32_t>(max_raw) << shift) <= 127u) ++shift;
  if (shift > 0) {
    for (auto& w : w_) {
      w = UQ08::from_raw(static_cast<std::uint8_t>(w.raw() << shift));
    }
  }
  return best;
}

PairIndex FixedWeightTable::argmax() const {
  PairIndex best{0, 0};
  std::uint8_t best_w = w_[0].raw();
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < m_; ++j) {
      const std::uint8_t w = w_[idx(i, j)].raw();
      if (w > best_w) {
        best_w = w;
        best = PairIndex{i, j};
      }
    }
  }
  return best;
}

void FixedWeightTable::reset() { std::fill(w_.begin(), w_.end(), UQ08::one()); }

namespace {
void check_snapshot_dims(std::size_t saved_n, std::size_t saved_m, std::size_t n,
                         std::size_t m, const char* kind) {
  if (saved_n != n || saved_m != m) {
    throw common::SnapshotError(std::string(kind) + ": snapshot is " +
                                std::to_string(saved_n) + "x" + std::to_string(saved_m) +
                                " but table is " + std::to_string(n) + "x" +
                                std::to_string(m));
  }
}
}  // namespace

void WeightTable::save(common::SnapshotWriter& w) const {
  w.u64(n_);
  w.u64(m_);
  w.f64_vec(w_);
}

void WeightTable::load(common::SnapshotReader& r) {
  const auto n = static_cast<std::size_t>(r.u64());
  const auto m = static_cast<std::size_t>(r.u64());
  check_snapshot_dims(n, m, n_, m_, "WeightTable");
  w_ = r.f64_vec();
  if (w_.size() != n_ * m_) {
    throw common::SnapshotError("WeightTable: weight count does not match dimensions");
  }
}

void FixedWeightTable::save(common::SnapshotWriter& w) const {
  w.u64(n_);
  w.u64(m_);
  for (UQ08 q : w_) w.u8(q.raw());
}

void FixedWeightTable::load(common::SnapshotReader& r) {
  const auto n = static_cast<std::size_t>(r.u64());
  const auto m = static_cast<std::size_t>(r.u64());
  check_snapshot_dims(n, m, n_, m_, "FixedWeightTable");
  for (UQ08& q : w_) q = UQ08::from_raw(r.u8());
}

}  // namespace gg::greengpu
