#include "src/greengpu/multi_division.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "src/common/snapshot.h"

namespace gg::greengpu {

namespace {

std::vector<double> initial_shares(std::size_t slots, double cpu_share) {
  if (slots < 2) throw std::invalid_argument("MultiDivider: need CPU + >=1 GPU");
  std::vector<double> shares(slots, 0.0);
  shares[0] = cpu_share;
  const double per_gpu = (1.0 - cpu_share) / static_cast<double>(slots - 1);
  for (std::size_t i = 1; i < slots; ++i) shares[i] = per_gpu;
  return shares;
}

void check_times(const std::vector<Seconds>& times, std::size_t slots) {
  if (times.size() != slots) {
    throw std::invalid_argument("MultiDivider: slot-time count mismatch");
  }
  for (const Seconds t : times) {
    if (t < Seconds{0.0}) throw std::invalid_argument("MultiDivider: negative time");
  }
}

}  // namespace

std::vector<double> waterfill_shares(const std::vector<double>& rates) {
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  std::vector<double> shares(rates.size(), 0.0);
  if (total <= 0.0) return shares;
  for (std::size_t i = 0; i < rates.size(); ++i) shares[i] = rates[i] / total;
  return shares;
}

MultiStepDivider::MultiStepDivider(std::size_t slots, MultiStepParams params)
    : params_(params), shares_(initial_shares(slots, params.initial_cpu_share)) {
  if (params_.step <= 0.0 || params_.step >= 1.0) {
    throw std::invalid_argument("MultiStepDivider: bad step");
  }
}

void MultiStepDivider::update(const std::vector<Seconds>& slot_times) {
  owner_.assert_owner("greengpu::MultiStepDivider");
  check_times(slot_times, shares_.size());

  // Identify the slowest and fastest slots among those that can give/take
  // work.  A slot with zero share has undefined speed: treat it as fastest
  // (it is idle and should receive work) only if some slot is overloaded.
  std::size_t slowest = 0;
  double slowest_t = -1.0;
  std::size_t fastest = 0;
  double fastest_t = 1e300;
  for (std::size_t i = 0; i < shares_.size(); ++i) {
    const double t = slot_times[i].get();
    if (shares_[i] > 0.0 && t > slowest_t) {
      slowest_t = t;
      slowest = i;
    }
    if (t < fastest_t && (i != 0 || shares_[0] < params_.max_cpu_share)) {
      fastest_t = t;
      fastest = i;
    }
  }
  if (slowest == fastest || slowest_t <= 0.0) {
    ++hold_streak_;
    return;
  }
  // Balanced already?
  if (slowest_t - fastest_t <= params_.balance_tolerance * slowest_t) {
    ++hold_streak_;
    return;
  }
  double step = std::min(params_.step, shares_[slowest]);

  // Oscillation safeguard, generalized: instead of holding when the pair's
  // ordering would flip (which can deadlock with >2 slots), cap the move at
  // the linearly predicted pairwise balance amount
  //   delta* = s_d s_f (t_d - t_f) / (s_f t_d + s_d t_f)
  // so the pair never overshoots — the same linear-scaling prediction as
  // Section V-B, used as a limiter rather than a veto.
  if (params_.safeguard && shares_[fastest] > 0.0) {
    const double sd = shares_[slowest];
    const double sf = shares_[fastest];
    const double balance =
        sd * sf * (slowest_t - fastest_t) / (sf * slowest_t + sd * fastest_t);
    step = std::min(step, balance);
  }
  if (step <= 0.0) {
    ++hold_streak_;
    return;
  }
  shares_[slowest] -= step;
  shares_[fastest] += step;
  if (fastest == 0) shares_[0] = std::min(shares_[0], params_.max_cpu_share);
  hold_streak_ = 0;
}

void MultiStepDivider::reset() {
  shares_ = initial_shares(shares_.size(), params_.initial_cpu_share);
  hold_streak_ = 0;
}

namespace {
std::vector<double> load_shares(common::SnapshotReader& r, std::size_t slots,
                                const char* kind) {
  std::vector<double> shares = r.f64_vec();
  if (shares.size() != slots) {
    throw common::SnapshotError(std::string(kind) + ": snapshot has " +
                                std::to_string(shares.size()) + " slots but divider has " +
                                std::to_string(slots));
  }
  return shares;
}
}  // namespace

void MultiStepDivider::save(common::SnapshotWriter& w) const {
  w.f64_vec(shares_);
  w.u64(static_cast<std::uint64_t>(hold_streak_));
}

void MultiStepDivider::load(common::SnapshotReader& r) {
  shares_ = load_shares(r, shares_.size(), "MultiStepDivider");
  hold_streak_ = static_cast<int>(r.u64());
}

MultiProfilingDivider::MultiProfilingDivider(std::size_t slots, MultiProfilingParams params)
    : params_(params),
      shares_(initial_shares(slots, params.initial_cpu_share)),
      rate_(slots) {
  if (params_.rate_alpha <= 0.0 || params_.rate_alpha > 1.0) {
    throw std::invalid_argument("MultiProfilingDivider: bad rate_alpha");
  }
}

void MultiProfilingDivider::update(const std::vector<Seconds>& slot_times) {
  owner_.assert_owner("greengpu::MultiProfilingDivider");
  check_times(slot_times, shares_.size());
  for (std::size_t i = 0; i < shares_.size(); ++i) {
    if (shares_[i] > 0.0 && slot_times[i] > Seconds{0.0}) {
      if (!rate_[i]) rate_[i].emplace(params_.rate_alpha);
      rate_[i]->update(shares_[i] / slot_times[i].get());
    }
  }
  // Need every slot observed at least once before committing to targets.
  for (const auto& r : rate_) {
    if (!r) return;
  }
  std::vector<double> target = waterfill_shares(rates());
  // Respect the CPU cap by redistributing its excess across the GPUs.
  if (target[0] > params_.max_cpu_share) {
    const double excess = target[0] - params_.max_cpu_share;
    target[0] = params_.max_cpu_share;
    const double gpu_total = 1.0 - params_.max_cpu_share;
    double gpu_sum = 0.0;
    for (std::size_t i = 1; i < target.size(); ++i) gpu_sum += target[i];
    for (std::size_t i = 1; i < target.size(); ++i) {
      target[i] += gpu_sum > 0.0 ? excess * target[i] / gpu_sum
                                 : excess / static_cast<double>(target.size() - 1);
    }
    (void)gpu_total;
  }
  double max_move = 0.0;
  for (std::size_t i = 0; i < shares_.size(); ++i) {
    max_move = std::max(max_move, std::fabs(target[i] - shares_[i]));
  }
  settle_streak_ = max_move <= params_.settle_tolerance ? settle_streak_ + 1 : 0;
  shares_ = std::move(target);
}

std::vector<double> MultiProfilingDivider::rates() const {
  std::vector<double> out(rate_.size(), 0.0);
  for (std::size_t i = 0; i < rate_.size(); ++i) {
    if (rate_[i]) out[i] = rate_[i]->value();
  }
  return out;
}

void MultiProfilingDivider::reset() {
  shares_ = initial_shares(shares_.size(), params_.initial_cpu_share);
  std::fill(rate_.begin(), rate_.end(), std::nullopt);
  settle_streak_ = 0;
}

void MultiProfilingDivider::save(common::SnapshotWriter& w) const {
  w.f64_vec(shares_);
  w.u64(rate_.size());
  for (const auto& rate : rate_) {
    w.b(rate.has_value());
    if (rate) {
      w.f64(rate->value());
      w.b(rate->seeded());
    }
  }
  w.u64(static_cast<std::uint64_t>(settle_streak_));
}

void MultiProfilingDivider::load(common::SnapshotReader& r) {
  shares_ = load_shares(r, shares_.size(), "MultiProfilingDivider");
  const std::uint64_t n = r.u64();
  if (n != rate_.size()) {
    throw common::SnapshotError("MultiProfilingDivider: rate slot count mismatch");
  }
  for (auto& rate : rate_) {
    if (r.b()) {
      const double value = r.f64();
      const bool seeded = r.b();
      rate.emplace(params_.rate_alpha);
      rate->restore(value, seeded);
    } else {
      rate.reset();
    }
  }
  settle_streak_ = static_cast<int>(r.u64());
}

std::unique_ptr<MultiDivider> make_multi_divider(MultiDividerKind kind, std::size_t slots) {
  switch (kind) {
    case MultiDividerKind::kStep:
      return std::make_unique<MultiStepDivider>(slots);
    case MultiDividerKind::kProfiling:
      return std::make_unique<MultiProfilingDivider>(slots);
  }
  throw std::invalid_argument("unknown multi-divider kind");
}

}  // namespace gg::greengpu
