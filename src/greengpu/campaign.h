// Batch experiment campaigns: a (workload x policy) matrix of runs with
// aggregated savings and CSV/JSON reports — the scaffolding behind the
// paper's evaluation section, packaged for reuse.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/greengpu/policy.h"
#include "src/greengpu/runner.h"

namespace gg::greengpu {

/// Campaign default for RunOptions::record: campaigns only consume the
/// aggregate fields of each ExperimentResult (energies, times, counts), so
/// per-step logs are dropped and memory stays O(1) per cell regardless of
/// run length.  Retention is pure telemetry — reports are bit-identical to
/// full recording.
[[nodiscard]] inline RunOptions campaign_default_options() {
  RunOptions options;
  options.record.mode = RecordMode::kCounters;
  return options;
}

/// Which execution engine steps the campaign's cells.  Both engines produce
/// byte-identical reports for the same config (the identity matrix in
/// tests/greengpu/batch_engine_test.cpp and the bench's identical_reports
/// invariants gate this); only wall-clock differs.
enum class CampaignEngine {
  /// One full run_experiment() per cell — the historical path.
  kScalar,
  /// BatchCampaignEngine: cells advance in lockstep per workload row, real
  /// verification is memoized once per workload (the other cells run
  /// model-only), and fault-seed replicates fork from a memoized warm-up
  /// prefix snapshot instead of re-simulating it.
  kBatch,
};

[[nodiscard]] std::string_view to_string(CampaignEngine engine);
/// Parse "scalar" / "batch"; nullopt on anything else (the CLI turns that
/// into its one-line unknown-value rejection, exit 2).
[[nodiscard]] std::optional<CampaignEngine> campaign_engine_from_string(
    std::string_view name);

struct CampaignConfig {
  /// Table II names; empty means the full suite.
  std::vector<std::string> workloads;
  /// Policies to run each workload under.  The FIRST policy is the baseline
  /// that savings are computed against.  Empty means the paper's four:
  /// best-performance, frequency-scaling, division, greengpu.
  std::vector<Policy> policies;
  RunOptions options{campaign_default_options()};
  /// Concurrent cells (0 = hardware_concurrency).  Cells are independent
  /// simulations and every result lands in an index-determined slot, so
  /// reports are byte-identical for every value — including under fault
  /// injection, because each cell's fault RNG is forked from the configured
  /// seed by cell index (see campaign_cell_seed).
  std::size_t jobs{1};
  /// Execution engine; reports are byte-identical across engines.
  CampaignEngine engine{CampaignEngine::kScalar};
  /// Fault-seed sweep: expand every policy into R copies named
  /// "<name>#s<r>" that differ only in their forked fault seed (the flat
  /// cell index feeds campaign_cell_seed, so each replicate draws a distinct
  /// fault schedule).  0 or 1 = no expansion; ignored unless a fault channel
  /// is active.  With options.faults_active_from = W, replicates of one
  /// policy share a bit-identical fault-free warm-up that the batch engine
  /// simulates once and forks.
  std::size_t fault_replicates{0};
};

/// Deterministic per-cell fault seed: forks `base` by flat cell index so a
/// cell's fault schedule depends only on its (workload, policy) position,
/// never on execution order or the number of jobs.
[[nodiscard]] std::uint64_t campaign_cell_seed(std::uint64_t base, std::size_t cell_index);

struct CampaignCell {
  ExperimentResult result;
  /// Energy saving vs the baseline policy on the same workload (fraction).
  double energy_saving{0.0};
  /// Execution-time delta vs the baseline (fraction; positive = slower).
  double time_delta{0.0};
};

struct CampaignResult {
  std::vector<std::string> workloads;
  std::vector<std::string> policy_names;
  /// cells[w * policy_count + p].
  std::vector<CampaignCell> cells;

  [[nodiscard]] const CampaignCell& cell(std::size_t workload_index,
                                         std::size_t policy_index) const;
  /// Mean energy saving of a policy across all workloads (fraction).
  [[nodiscard]] double mean_saving(std::size_t policy_index) const;
  /// True if every run verified.
  [[nodiscard]] bool all_verified() const;
};

/// Progress callback: (workload, policy, completed_runs, total_runs).
using CampaignProgress =
    std::function<void(const std::string&, const std::string&, std::size_t, std::size_t)>;

/// The resolved (workload x policy) matrix a config expands to.  Shared by
/// run_campaign and the checkpointed runner (recovery.h) so both agree on
/// cell indexing — flat index i = workload * policies.size() + policy.
struct CampaignPlan {
  std::vector<std::string> workloads;
  std::vector<Policy> policies;
  /// Replicate-group width after fault_replicates expansion: policies
  /// [g*stride, (g+1)*stride) are seed-replicates of one base policy.
  /// 1 when no expansion happened — every policy is its own group.
  std::size_t replicate_stride{1};
  [[nodiscard]] std::size_t total() const { return workloads.size() * policies.size(); }
};

[[nodiscard]] CampaignPlan plan_campaign(const CampaignConfig& config);

/// Deterministic post-pass computing per-cell savings vs each workload's
/// baseline policy (index 0).  Identical for any execution order, so
/// resumed and uninterrupted campaigns report byte-identical savings.
void finalize_campaign_savings(CampaignResult& result);

[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config,
                                          const CampaignProgress& progress = {});

/// One row per run: workload, policy, metrics, savings.
void write_campaign_csv(std::ostream& os, const CampaignResult& result);

/// Full structured report (per-run metrics + per-policy aggregates).
void write_campaign_json(std::ostream& os, const CampaignResult& result);

/// Human-readable GitHub-flavoured markdown table: one row per workload,
/// one column per policy with energy saving and time delta vs the baseline.
void write_campaign_markdown(std::ostream& os, const CampaignResult& result);

}  // namespace gg::greengpu
