// All GreenGPU tunables with the paper's published defaults.
#pragma once

#include "src/common/units.h"

namespace gg::greengpu {

/// Parameters of the WMA-based GPU frequency-scaling tier (Section V-A).
struct WmaParams {
  /// Energy-vs-performance trade-off for the core loss (Eq. 1); the paper
  /// derives 0.15 from experiments.
  double alpha_core{0.15};
  /// Same for the memory loss (Eq. 2); paper value 0.02.
  double alpha_mem{0.02};
  /// Core-vs-memory balance in the total loss (Eq. 3); paper value 0.3.
  double phi{0.3};
  /// History-vs-new-loss trade-off in the weight update (Eq. 4); paper
  /// value 0.2.
  double beta{0.2};
  /// Scaling invocation period; the Fig. 5 experiment uses 3 s.
  Seconds interval{3.0};
  /// Relative floor applied to weights after renormalization so a pair
  /// that lost for a long stretch can regain the argmax in bounded time.
  /// (Implementation detail; the paper does not specify underflow handling.
  /// 1e-2 keeps the learner responsive to phase changes — a previously
  /// losing pair can win back the argmax within a few intervals, matching
  /// the "quick workload change response" the paper tunes beta for.)
  double weight_floor{1e-2};
  /// Optional EWMA pre-filter on the measured utilizations (weight of the
  /// newest sample; 1.0 disables filtering).  The paper folds all noise
  /// handling into beta; a measurement-side filter is the natural extension
  /// when nvidia-smi readings are jittery.
  double util_filter_alpha{1.0};
  /// Harden the scaler against a flaky platform (sim/fault.h): hold
  /// weights on failed/stale samples, retry rejected clock writes with
  /// bounded backoff, fall back to the last applied pair.  Off by default
  /// so the perfect-platform behaviour is bit-identical.
  bool harden{false};
  /// A sample whose averaging window is shorter than this fraction of the
  /// scaling interval is treated as stale (non-informative) when hardened.
  double min_window_frac{0.5};
  /// Use the straight-line reference implementation of the Algorithm 1 step
  /// (per-step loss vectors, separate argmax scan) instead of the fused
  /// allocation-free fast path with quantized loss tables.  The two produce
  /// bit-identical decision streams (asserted by the equivalence suite);
  /// the flag exists for that suite and for benchmarking the speedup.
  bool reference_impl{false};
  /// Fold the DMA copy-engine busy fraction into the memory-domain view:
  /// the effective memory utilization becomes max(mem_util, copy_busy).
  /// Keeps the scaler from down-clocking the memory domain while an
  /// asynchronous pipeline is saturating the bus (transfers ride the
  /// memory clock even when the measured bandwidth share of kernels is
  /// low).  Off by default so existing decision streams are bit-identical.
  bool observe_copy_engine{false};
  /// Immediate re-tries of a rejected/clamped clock write per step.
  int actuation_retries{2};
  /// Base delay of the asynchronous retry after immediate retries failed
  /// (doubles per attempt, capped at the scaling interval).
  Seconds actuation_backoff{0.25};
};

/// Parameters of the ondemand CPU governor (Section IV; linux-2.6.9 policy).
struct OndemandParams {
  /// Above this package utilization the governor jumps to the peak P-state.
  double up_threshold{0.80};
  /// Below this utilization it steps one P-state down.
  double down_threshold{0.30};
  /// Sampling period.
  Seconds interval{0.1};
};

/// Parameters of the workload-division tier (Section V-B).
struct DivisionParams {
  /// Division step; the paper uses 5 % as the hardware-dependent step.
  double step{0.05};
  /// Initial CPU share; Fig. 7a starts at 30 % (any value converges).
  double initial_ratio{0.30};
  /// Bounds on the CPU share.
  double min_ratio{0.0};
  double max_ratio{0.95};
  /// Enable the oscillation-safeguard prediction (Section V-B).
  bool safeguard{true};
};

/// Fault-tolerance behaviour of the experiment harness (runner + launch
/// paths) when a `sim::FaultInjector` is active.  Disabled by default: the
/// un-hardened stack surfaces every injected fault, which is the baseline
/// the fault-rate ablation compares against.
struct HardeningParams {
  /// Master switch; also propagates `WmaParams::harden` semantics to the
  /// runner (degraded-iteration bookkeeping, division hold).
  bool enabled{false};
  /// Bounded immediate re-tries of failed kernel launches / host chunks
  /// (cudalite::FaultTolerance::max_launch_retries).
  int max_launch_retries{3};
  /// Route a permanently failed side's item range to the surviving side.
  bool reroute_failed_side{true};
  /// Simulated-time budget for one iteration; 0 disables the watchdog.
  /// Only armed while a fault injector is installed.
  Seconds watchdog_timeout{300.0};
  /// Give up (throw) after this many watchdog trips in one experiment.
  int max_watchdog_trips{8};
};

/// Top-level GreenGPU configuration: both tiers plus their decoupling rule
/// (the division interval must be much longer than the scaling interval;
/// the paper uses "no less than 40x", Section IV).
struct GreenGpuParams {
  WmaParams wma{};
  OndemandParams ondemand{};
  DivisionParams division{};
  HardeningParams hardening{};
};

}  // namespace gg::greengpu
