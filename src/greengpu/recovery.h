// Crash recovery: the campaign journal and the RecoverySupervisor.
//
// A campaign is a (workload x policy) matrix of independent, deterministic
// cells (campaign.h).  Crash consistency therefore works at cell
// granularity: every completed cell's scalar results are appended to a
// crash-safe journal, and a resumed campaign loads the journal, skips the
// journaled cells and re-runs the rest from scratch.  Because each cell's
// fault RNG is forked from the configured seed by cell *position*
// (campaign_cell_seed), a re-run cell produces bit-identical results — so a
// campaign killed at ANY point and resumed reports byte-identical CSV/JSON
// to an uninterrupted run, for any --jobs value, faults on or off.
//
// The journal is append-only with per-record CRC framing.  A torn trailing
// record (the process died mid-append — exactly what the mid-checkpoint
// kill-point and std::_Exit produce) is detected on open and truncated away;
// everything before it stays trusted.  A header fingerprint derived from the
// campaign plan and options refuses to resume against a journal written by a
// different configuration.
//
// The RecoverySupervisor is the in-process form of "systemd restarts the
// daemon": it runs the checkpointed campaign, catches CrashInjected (the
// throw-mode kill-point), flips resume on and tries again, up to a restart
// budget.  Real process death (exit-mode kill-points, exit code 70) is
// supervised the same way from the outside by the CI crash-recovery matrix
// re-invoking `greengpu_cli --campaign --resume`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/backoff.h"
#include "src/common/journal.h"
#include "src/greengpu/campaign.h"

namespace gg::greengpu {

/// Checkpoint/resume knobs threaded from the CLI.
struct CheckpointOptions {
  /// Journal + snapshot directory; empty disables checkpointing entirely.
  std::string dir;
  /// Per-run controller snapshot cadence in iterations (0 = journal only).
  std::size_t every{0};
  /// Skip cells already present in the journal instead of starting fresh.
  bool resume{false};

  [[nodiscard]] bool enabled() const { return !dir.empty(); }
};

/// Validated prefix of a periodic run checkpoint written by run_experiment
/// (`<dir>/<tag>.ggsn`).  nullopt for a missing, truncated or corrupt file —
/// the caller's clean fallback is "cold start".
struct RunCheckpointMeta {
  std::uint64_t iteration{0};
  double sim_time{0.0};
  bool has_scaler{false};
  bool has_divider{false};
};
[[nodiscard]] std::optional<RunCheckpointMeta> read_run_checkpoint_meta(
    const std::string& path);

/// Append-only, CRC-framed journal of completed campaign cells — the
/// campaign-cell schema layered on common::Journal's framing (magic "GGJL",
/// record tag = cell index, payload = serialized scalar results).
class CampaignJournal {
 public:
  struct Entry {
    std::size_t cell_index{0};
    ExperimentResult result;
  };

  /// Configuration fingerprint stored in the header: covers the resolved
  /// plan (workload and policy names) and every option that affects cell
  /// results, so a journal can only resume the campaign that wrote it.
  [[nodiscard]] static std::uint64_t fingerprint(const CampaignPlan& plan,
                                                 const RunOptions& options);

  /// Scan `path`: validate the header against `fingerprint`, load every
  /// intact record and truncate a torn tail in place.  Throws
  /// common::SnapshotError on a missing/foreign/mismatched journal.
  [[nodiscard]] static std::vector<Entry> read(const std::string& path,
                                               std::uint64_t fingerprint);

  /// Open for appending.  `fresh` truncates and writes a new header;
  /// otherwise records append after the existing (already truncated-to-good)
  /// content.
  CampaignJournal(std::string path, std::uint64_t fingerprint, bool fresh);

  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  /// Append one completed cell and flush.  Hosts the mid-checkpoint
  /// kill-point between two half-record flushes, so an exit-mode kill here
  /// leaves exactly the torn tail that read() truncates.
  void append(std::size_t cell_index, const ExperimentResult& result);

  [[nodiscard]] const std::string& path() const { return journal_.path(); }

 private:
  common::Journal journal_;
};

/// run_campaign with a crash-safe journal: journaled cells are skipped on
/// resume, finished cells are appended as they complete, and the report is
/// byte-identical to an uninterrupted run.  Falls back to plain
/// run_campaign when `ckpt` is disabled.
[[nodiscard]] CampaignResult run_campaign_checkpointed(
    const CampaignConfig& config, const CheckpointOptions& ckpt,
    const CampaignProgress& progress = {});

/// In-process supervisor: reruns the checkpointed campaign after every
/// injected crash (CrashInjected from a throw-mode kill-point), resuming
/// from the journal, until it completes or the restart budget is exhausted
/// (then the last CrashInjected propagates).
class RecoverySupervisor {
 public:
  RecoverySupervisor(CampaignConfig config, CheckpointOptions ckpt,
                     int max_restarts = 16,
                     common::BackoffConfig backoff = {})
      : config_(std::move(config)), ckpt_(std::move(ckpt)),
        max_restarts_(max_restarts), backoff_(backoff) {}

  [[nodiscard]] CampaignResult run(const CampaignProgress& progress = {});

  /// Crashes survived during the last run().
  [[nodiscard]] int restarts() const { return restarts_; }

  /// The backoff delay planned before each restart of the last run(), in
  /// order (size == restarts()).  The supervisor itself never sleeps —
  /// campaigns run in simulated time and tests must stay instant — but the
  /// schedule is the exact deterministic sequence a daemon-style caller
  /// sleeps through, so tests assert on it directly.
  [[nodiscard]] const std::vector<Seconds>& restart_delays() const {
    return restart_delays_;
  }

 private:
  CampaignConfig config_;
  CheckpointOptions ckpt_;
  int max_restarts_;
  common::BackoffConfig backoff_;
  int restarts_{0};
  std::vector<Seconds> restart_delays_;
};

}  // namespace gg::greengpu
