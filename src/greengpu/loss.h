// Table I loss functions and the umean utilization mapping (Section V-A).
//
// For every available frequency level the algorithm knows the utilization
// that level is "most suitable" for (`umean`): the peak frequency suits
// 100 % utilization, the lowest suits 0 %, and intermediate levels are
// linearly mapped over the frequency range (following Dhiman & Rosing [4]).
// Comparing the measured utilization `u` against `umean[i]` yields an energy
// loss (the level is faster than needed) or a performance loss (slower than
// needed), blended by alpha.
#pragma once

#include <cstddef>
#include <vector>

#include "src/sim/dvfs.h"

namespace gg::greengpu {

/// Energy/performance loss pair for one level (both in [0, 1]).
struct LevelLoss {
  double energy{0.0};       // l_ie: capacity wasted (u below umean)
  double performance{0.0};  // l_ip: capacity short (u above umean)
};

/// umean for every level of a DVFS table: peak -> 1.0, floor -> 0.0,
/// linear in frequency between (Section V-A).
[[nodiscard]] std::vector<double> umean_table(const sim::DvfsTable& table);

/// Table I: raw energy/performance loss of level `i` for utilization `u`.
[[nodiscard]] LevelLoss raw_loss(double u, double umean_i);

/// Eq. 1 / Eq. 2: blended per-component loss
///   l = alpha * l_e + (1 - alpha) * l_p.
[[nodiscard]] double component_loss(double u, double umean_i, double alpha);

/// Eq. 3: total loss of a (core level, memory level) pair
///   TotalLoss = phi * l_core + (1 - phi) * l_mem.
[[nodiscard]] double total_loss(double core_loss, double mem_loss, double phi);

/// Eq. 4: multiplicative weight update
///   w' = w * (1 - (1 - beta) * TotalLoss).
[[nodiscard]] double updated_weight(double weight, double loss, double beta);

}  // namespace gg::greengpu
