// Table I loss functions and the umean utilization mapping (Section V-A).
//
// For every available frequency level the algorithm knows the utilization
// that level is "most suitable" for (`umean`): the peak frequency suits
// 100 % utilization, the lowest suits 0 %, and intermediate levels are
// linearly mapped over the frequency range (following Dhiman & Rosing [4]).
// Comparing the measured utilization `u` against `umean[i]` yields an energy
// loss (the level is faster than needed) or a performance loss (slower than
// needed), blended by alpha.
#pragma once

#include <cstddef>
#include <vector>

#include "src/sim/dvfs.h"

namespace gg::greengpu {

/// Energy/performance loss pair for one level (both in [0, 1]).
struct LevelLoss {
  double energy{0.0};       // l_ie: capacity wasted (u below umean)
  double performance{0.0};  // l_ip: capacity short (u above umean)
};

/// umean for every level of a DVFS table: peak -> 1.0, floor -> 0.0,
/// linear in frequency between (Section V-A).
[[nodiscard]] std::vector<double> umean_table(const sim::DvfsTable& table);

/// Table I: raw energy/performance loss of level `i` for utilization `u`.
[[nodiscard]] LevelLoss raw_loss(double u, double umean_i);

/// Eq. 1 / Eq. 2: blended per-component loss
///   l = alpha * l_e + (1 - alpha) * l_p.
[[nodiscard]] double component_loss(double u, double umean_i, double alpha);

/// Eq. 3: total loss of a (core level, memory level) pair
///   TotalLoss = phi * l_core + (1 - phi) * l_mem.
[[nodiscard]] double total_loss(double core_loss, double mem_loss, double phi);

/// Eq. 4: multiplicative weight update
///   w' = w * (1 - (1 - beta) * TotalLoss).
[[nodiscard]] double updated_weight(double weight, double loss, double beta);

/// Quantized per-level loss lookup for the scaler fast path.
///
/// NVML-style utilization samples are *integer percent* (nvml.h mirrors
/// nvmlUtilization_t), so with the measurement filter off the utilization a
/// scaler step feeds into Eq. 1/2 can only take 101 distinct values — and
/// `component_loss` is a pure function of (u, umean_i, alpha).  Tabulating
/// all 101 rows at construction therefore makes the per-step loss
/// evaluation an exact lookup: row `pct` holds literally the doubles
/// `scale * component_loss(pct / 100.0, umean[i], alpha)` that the
/// straight-line code would compute, because `pct / 100.0` here and the
/// runtime's `rates.gpu / 100.0` are the same double.
///
/// `scale` pre-folds the Eq. 3 blend weight (phi for the core table,
/// 1 - phi for the memory table): the pair loss of (i, j) then reduces to
/// one addition of two table entries, bit-identical to
/// `total_loss(lc_i, lm_j, phi)` — same multiplies, same add, same
/// rounding (the build targets plain x86-64, so no FMA contraction can
/// reassociate it).  With it, the Eq. 4 decay factor per pair costs one
/// fused multiply-subtract and zero transcendental calls; the decay "table"
/// is the pair of scaled rows plus the precomputed (1 - beta).
class QuantizedLossTable {
 public:
  /// Throws (via component_loss) if alpha is outside [0, 1].
  QuantizedLossTable(const std::vector<double>& umean, double alpha, double scale = 1.0);

  [[nodiscard]] std::size_t levels() const { return levels_; }

  /// Row of `levels()` scaled losses for integer utilization percent `pct`.
  /// Percentages above 100 clamp to the 100 row — exactly what
  /// `component_loss`'s clamp of u into [0, 1] produces for corrupt
  /// samples.
  [[nodiscard]] const double* row(unsigned pct) const {
    return rows_.data() + static_cast<std::size_t>(pct > 100 ? 100 : pct) * levels_;
  }

  [[nodiscard]] double at(unsigned pct, std::size_t level) const {
    return row(pct)[level];
  }

 private:
  std::size_t levels_;
  std::vector<double> rows_;  // 101 rows x levels_
};

}  // namespace gg::greengpu
