// Division across the CPU and multiple GPUs.
//
// The paper's application structure already anticipates several GPUs ("one
// pthread for one GPU", Section VI) even though its testbed has one.  Two
// generalizations of tier 1 to N+1 slots (slot 0 = CPU, slots 1..N = GPUs):
//
//  * `MultiStepDivider` — the paper's heuristic pairwise: each iteration,
//    move up to one `step` of work from the globally slowest slot to the
//    fastest.  The Section V-B oscillation safeguard generalizes to a
//    limiter: the move is capped at the linearly predicted pairwise balance
//    amount so the pair never overshoots (a veto would deadlock with more
//    than two slots).
//
//  * `MultiProfilingDivider` — the Qilin-style rate estimator: per-slot
//    processing rates from measured chunk times, shares proportional to
//    rates (the water-filling equal-finish solution).
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "src/common/stats.h"
#include "src/common/thread_checker.h"
#include "src/common/units.h"
#include "src/greengpu/params.h"

namespace gg::common {
class SnapshotWriter;
class SnapshotReader;
}  // namespace gg::common

namespace gg::greengpu {

class MultiDivider {
 public:
  virtual ~MultiDivider() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Shares for the next iteration (slot 0 = CPU, then one per GPU).
  [[nodiscard]] virtual const std::vector<double>& shares() const = 0;
  /// Feed the per-slot chunk times of the just-finished iteration.
  virtual void update(const std::vector<Seconds>& slot_times) = 0;
  [[nodiscard]] virtual bool converged(int streak = 2) const = 0;
  virtual void reset() = 0;

  /// Serialize shares/streaks/rate filters; restore into a divider of the
  /// same kind and slot count (mismatch throws common::SnapshotError).
  virtual void save(common::SnapshotWriter& w) const = 0;
  virtual void load(common::SnapshotReader& r) = 0;
};

struct MultiStepParams {
  double step{0.05};
  /// Initial CPU share; the remainder starts split equally across GPUs.
  double initial_cpu_share{0.10};
  /// Slot-0 (CPU) cap, like the single-device max_ratio.
  double max_cpu_share{0.95};
  bool safeguard{true};
  /// Relative time spread below which the slots count as balanced.
  double balance_tolerance{0.05};
};

class MultiStepDivider final : public MultiDivider {
 public:
  /// `slots` counts the CPU plus all GPUs (>= 2).
  MultiStepDivider(std::size_t slots, MultiStepParams params = {});

  [[nodiscard]] std::string_view name() const override { return "multi-step"; }
  [[nodiscard]] const std::vector<double>& shares() const override { return shares_; }
  void update(const std::vector<Seconds>& slot_times) override;
  [[nodiscard]] bool converged(int streak = 2) const override {
    return hold_streak_ >= streak;
  }
  void reset() override;

  void save(common::SnapshotWriter& w) const override;
  void load(common::SnapshotReader& r) override;

 private:
  MultiStepParams params_;
  std::vector<double> shares_;
  int hold_streak_{0};
  /// Dividers are per-runner, single-owner state ("one pthread per GPU"
  /// feeds one divider); armed in debug/TSan builds, free in release.
  common::ThreadChecker owner_;
};

struct MultiProfilingParams {
  double initial_cpu_share{0.10};
  double max_cpu_share{0.95};
  double rate_alpha{0.5};
  double settle_tolerance{0.02};
};

class MultiProfilingDivider final : public MultiDivider {
 public:
  MultiProfilingDivider(std::size_t slots, MultiProfilingParams params = {});

  [[nodiscard]] std::string_view name() const override { return "multi-profiling"; }
  [[nodiscard]] const std::vector<double>& shares() const override { return shares_; }
  void update(const std::vector<Seconds>& slot_times) override;
  [[nodiscard]] bool converged(int streak = 2) const override {
    return settle_streak_ >= streak;
  }
  void reset() override;

  void save(common::SnapshotWriter& w) const override;
  void load(common::SnapshotReader& r) override;

  /// Estimated per-slot rates (share/second); 0 while unobserved.
  [[nodiscard]] std::vector<double> rates() const;

 private:
  MultiProfilingParams params_;
  std::vector<double> shares_;
  std::vector<std::optional<Ewma>> rate_;
  int settle_streak_{0};
  /// See MultiStepDivider::owner_.
  common::ThreadChecker owner_;
};

enum class MultiDividerKind { kStep, kProfiling };

[[nodiscard]] std::unique_ptr<MultiDivider> make_multi_divider(MultiDividerKind kind,
                                                               std::size_t slots);

/// Equal-finish shares for the given per-slot rates (used by tests and the
/// profiling divider): share_i = rate_i / sum(rates).
[[nodiscard]] std::vector<double> waterfill_shares(const std::vector<double>& rates);

}  // namespace gg::greengpu
