#include "src/greengpu/model_dividers.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gg::greengpu {

namespace {

double clamp(double v, double lo, double hi) { return std::min(hi, std::max(lo, v)); }

DivisionAction action_for(double old_ratio, double new_ratio, bool settled) {
  if (settled || new_ratio == old_ratio) return DivisionAction::kHold;
  return new_ratio > old_ratio ? DivisionAction::kIncreaseCpu
                               : DivisionAction::kDecreaseCpu;
}

}  // namespace

ProfilingDivider::ProfilingDivider(ProfilingDividerParams params)
    : params_(params), ratio_(params.probe_ratio) {
  if (params_.probe_ratio <= 0.0 || params_.probe_ratio >= 1.0) {
    throw std::invalid_argument("ProfilingDivider: probe ratio must be in (0,1)");
  }
  if (params_.rate_alpha <= 0.0 || params_.rate_alpha > 1.0) {
    throw std::invalid_argument("ProfilingDivider: rate_alpha must be in (0,1]");
  }
}

DivisionDecision ProfilingDivider::update(const IterationFeedback& feedback) {
  if (feedback.degraded) {
    // Faulted iteration: rate samples would be distorted — keep everything.
    return DivisionDecision{ratio_, DivisionAction::kHoldDegraded};
  }
  const double r = ratio_;
  if (r > 0.0 && feedback.cpu_time > Seconds{0.0}) {
    const double sample = r / feedback.cpu_time.get();
    if (!cpu_rate_) cpu_rate_.emplace(params_.rate_alpha);
    cpu_rate_->update(sample);
  }
  if (r < 1.0 && feedback.gpu_time > Seconds{0.0}) {
    const double sample = (1.0 - r) / feedback.gpu_time.get();
    if (!gpu_rate_) gpu_rate_.emplace(params_.rate_alpha);
    gpu_rate_->update(sample);
  }

  DivisionDecision d{ratio_, DivisionAction::kHold};
  if (!cpu_rate_ || !gpu_rate_) return d;  // keep probing

  // Qilin's balance point: both sides finish together when the shares are
  // proportional to the processing rates.
  const double cr = cpu_rate_->value();
  const double gr = gpu_rate_->value();
  const double target = clamp(cr / (cr + gr), params_.min_ratio, params_.max_ratio);
  const bool settled =
      std::fabs(target - ratio_) <= params_.settle_tolerance * std::max(target, 1e-9);
  settle_streak_ = settled ? settle_streak_ + 1 : 0;
  d.action = action_for(ratio_, target, settled);
  ratio_ = target;
  d.ratio = target;
  return d;
}

void ProfilingDivider::reset() {
  ratio_ = params_.probe_ratio;
  cpu_rate_.reset();
  gpu_rate_.reset();
  settle_streak_ = 0;
}

namespace {
void save_rate(common::SnapshotWriter& w, const std::optional<Ewma>& rate) {
  w.b(rate.has_value());
  if (rate) {
    w.f64(rate->value());
    w.b(rate->seeded());
  }
}

void load_rate(common::SnapshotReader& r, std::optional<Ewma>& rate, double alpha) {
  if (!r.b()) {
    rate.reset();
    return;
  }
  const double value = r.f64();
  const bool seeded = r.b();
  rate.emplace(alpha);
  rate->restore(value, seeded);
}
}  // namespace

void ProfilingDivider::save(common::SnapshotWriter& w) const {
  w.f64(ratio_);
  save_rate(w, cpu_rate_);
  save_rate(w, gpu_rate_);
  w.u64(static_cast<std::uint64_t>(settle_streak_));
}

void ProfilingDivider::load(common::SnapshotReader& r) {
  ratio_ = r.f64();
  load_rate(r, cpu_rate_, params_.rate_alpha);
  load_rate(r, gpu_rate_, params_.rate_alpha);
  settle_streak_ = static_cast<int>(r.u64());
}

EnergyModelDivider::EnergyModelDivider(EnergyModelDividerParams params)
    : params_(params), ratio_(params.probe_low) {
  if (params_.probe_low <= 0.0 || params_.probe_low >= 1.0 || params_.probe_high <= 0.0 ||
      params_.probe_high >= 1.0 || params_.probe_low == params_.probe_high) {
    throw std::invalid_argument(
        "EnergyModelDivider: probes must be distinct interior ratios");
  }
  if (params_.search_step <= 0.0 || params_.search_step >= 1.0) {
    throw std::invalid_argument("EnergyModelDivider: bad search step");
  }
}

double EnergyModelDivider::predict_makespan(double r) const {
  const double cr = cpu_rate_ ? cpu_rate_->value() : 0.0;
  const double gr = gpu_rate_ ? gpu_rate_->value() : 0.0;
  double t = 0.0;
  if (r > 0.0) {
    if (cr <= 0.0) return 1e300;
    t = r / cr;
  }
  if (r < 1.0) {
    if (gr <= 0.0) return 1e300;
    t = std::max(t, (1.0 - r) / gr);
  }
  return t;
}

double EnergyModelDivider::predict_energy(double r) const {
  return p_sys_ * predict_makespan(r) + c_cpu_ * r;
}

void EnergyModelDivider::refit() {
  // Least squares for E ~ p_sys * T + c_cpu * r over the observations.
  double stt = 0.0, str = 0.0, srr = 0.0, ste = 0.0, sre = 0.0;
  for (const auto& o : observations_) {
    stt += o.makespan * o.makespan;
    str += o.makespan * o.ratio;
    srr += o.ratio * o.ratio;
    ste += o.makespan * o.energy;
    sre += o.ratio * o.energy;
  }
  const double det = stt * srr - str * str;
  if (std::fabs(det) < 1e-12 * stt * std::max(srr, 1e-12)) {
    // Degenerate (e.g. all observations at one ratio): fall back to a pure
    // makespan-proportional model.
    p_sys_ = stt > 0.0 ? ste / stt : 0.0;
    c_cpu_ = 0.0;
    return;
  }
  p_sys_ = (ste * srr - sre * str) / det;
  c_cpu_ = (sre * stt - ste * str) / det;
}

DivisionDecision EnergyModelDivider::update(const IterationFeedback& feedback) {
  if (feedback.degraded) {
    // Faulted iteration: neither the rates nor the energy sample are
    // trustworthy, so skip the observation entirely.
    return DivisionDecision{ratio_, DivisionAction::kHoldDegraded};
  }
  const double r = ratio_;
  if (r > 0.0 && feedback.cpu_time > Seconds{0.0}) {
    if (!cpu_rate_) cpu_rate_.emplace(params_.rate_alpha);
    cpu_rate_->update(r / feedback.cpu_time.get());
  }
  if (r < 1.0 && feedback.gpu_time > Seconds{0.0}) {
    if (!gpu_rate_) gpu_rate_.emplace(params_.rate_alpha);
    gpu_rate_->update((1.0 - r) / feedback.gpu_time.get());
  }
  const double makespan = std::max(feedback.cpu_time.get(), feedback.gpu_time.get());
  if (makespan > 0.0 && feedback.total_energy > Joules{0.0}) {
    observations_.push_back(Observation{r, makespan, feedback.total_energy.get()});
  }

  ++iteration_;
  DivisionDecision d{ratio_, DivisionAction::kHold};
  if (iteration_ == 1) {
    // Second probe to identify both model parameters.
    ratio_ = params_.probe_high;
    d.ratio = ratio_;
    d.action = action_for(r, ratio_, false);
    return d;
  }
  if (!cpu_rate_ || !gpu_rate_ || observations_.size() < 2) return d;

  refit();
  // Argmin of predicted energy over the share grid.
  double best_r = params_.min_ratio;
  double best_e = predict_energy(best_r);
  for (double cand = params_.min_ratio; cand <= params_.max_ratio + 1e-12;
       cand += params_.search_step) {
    const double e = predict_energy(cand);
    if (e < best_e) {
      best_e = e;
      best_r = cand;
    }
  }
  const bool settled =
      std::fabs(best_r - ratio_) <= params_.settle_tolerance * std::max(best_r, 1e-9);
  settle_streak_ = settled ? settle_streak_ + 1 : 0;
  d.action = action_for(ratio_, best_r, settled);
  ratio_ = best_r;
  d.ratio = best_r;
  return d;
}

void EnergyModelDivider::reset() {
  ratio_ = params_.probe_low;
  iteration_ = 0;
  cpu_rate_.reset();
  gpu_rate_.reset();
  observations_.clear();
  p_sys_ = 0.0;
  c_cpu_ = 0.0;
  settle_streak_ = 0;
}

void EnergyModelDivider::save(common::SnapshotWriter& w) const {
  w.f64(ratio_);
  w.u64(static_cast<std::uint64_t>(iteration_));
  save_rate(w, cpu_rate_);
  save_rate(w, gpu_rate_);
  w.u64(observations_.size());
  for (const Observation& o : observations_) {
    w.f64(o.ratio);
    w.f64(o.makespan);
    w.f64(o.energy);
  }
  w.f64(p_sys_);
  w.f64(c_cpu_);
  w.u64(static_cast<std::uint64_t>(settle_streak_));
}

void EnergyModelDivider::load(common::SnapshotReader& r) {
  ratio_ = r.f64();
  iteration_ = static_cast<int>(r.u64());
  load_rate(r, cpu_rate_, params_.rate_alpha);
  load_rate(r, gpu_rate_, params_.rate_alpha);
  const std::uint64_t n = r.u64();
  observations_.clear();
  observations_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Observation o{};
    o.ratio = r.f64();
    o.makespan = r.f64();
    o.energy = r.f64();
    observations_.push_back(o);
  }
  p_sys_ = r.f64();
  c_cpu_ = r.f64();
  settle_streak_ = static_cast<int>(r.u64());
}

std::string_view to_string(DividerKind kind) {
  switch (kind) {
    case DividerKind::kStep: return "step";
    case DividerKind::kProfiling: return "qilin-profiling";
    case DividerKind::kEnergyModel: return "energy-model";
  }
  return "unknown";
}

DividerKind divider_from_string(std::string_view name) {
  if (name == "step") return DividerKind::kStep;
  if (name == "qilin-profiling" || name == "qilin" || name == "profiling") {
    return DividerKind::kProfiling;
  }
  if (name == "energy-model" || name == "energy") return DividerKind::kEnergyModel;
  throw std::invalid_argument("unknown divider: " + std::string(name));
}

std::unique_ptr<Divider> make_divider(DividerKind kind, const DivisionParams& step_params) {
  switch (kind) {
    case DividerKind::kStep:
      return std::make_unique<DivisionController>(step_params);
    case DividerKind::kProfiling: {
      ProfilingDividerParams p;
      p.probe_ratio = step_params.initial_ratio > 0.0 && step_params.initial_ratio < 1.0
                          ? step_params.initial_ratio
                          : 0.30;
      p.min_ratio = step_params.min_ratio;
      p.max_ratio = step_params.max_ratio;
      return std::make_unique<ProfilingDivider>(p);
    }
    case DividerKind::kEnergyModel: {
      EnergyModelDividerParams p;
      p.min_ratio = step_params.min_ratio;
      p.max_ratio = step_params.max_ratio;
      return std::make_unique<EnergyModelDivider>(p);
    }
  }
  throw std::invalid_argument("unknown divider kind");
}

}  // namespace gg::greengpu
