// Batched SoA campaign engine: advance many campaign cells in lockstep and
// memoize the work they share.
//
// A campaign cell is one (workload, policy) simulation.  The scalar engine
// runs every cell as an independent full experiment; most of that work is
// redundant:
//
//   * Real kernel computation only matters for `verified` — the simulated
//     energies/times are pure functions of the model (cudalite's
//     ComputeMode::kModelOnly contract).  The batch engine runs ONE
//     full-compute cell per workload row (the verify donor), executes every
//     other cell model-only (~1000x cheaper), and patches their reports
//     with the memoized verification outcome.
//   * Fault-seed replicates (CampaignConfig::fault_replicates with
//     RunOptions::faults_active_from = W) share a bit-identical fault-free
//     warm-up prefix.  The engine simulates the prefix once per replicate
//     group, snapshots it with ExperimentEngine::save_prefix, and forks the
//     remaining replicates from the snapshot instead of re-simulating
//     iterations 0..W-1.
//
// The unit of parallel work is a whole workload row (policy_count cells), so
// the verify memo and prefix snapshots are worker-local state and reports
// stay byte-identical for any --jobs value.  Within a row the live cells
// step in lockstep over contiguous state (the GG_HOT_BATCH stepper), and
// results publish in flat-index order.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "src/greengpu/campaign.h"
#include "src/greengpu/runner.h"

namespace gg::greengpu {

class BatchCampaignEngine {
 public:
  struct Hooks {
    /// Adjust a cell's RunOptions after the engine applied the per-cell
    /// fault-seed fork but before the cell starts (checkpoint tags, etc.).
    /// Must not change anything that breaks the warm-up-sharing contract
    /// (model_only, faults_active_from, fault rates).
    std::function<void(std::size_t, RunOptions&)> customize;
    /// A cell's result is final.  Within one workload row, fires in
    /// flat-index order; rows may interleave under --jobs > 1.  The cell's
    /// slot in `cells` is already written when this fires.
    std::function<void(std::size_t, const ExperimentResult&)> on_done;
  };

  /// What the batching actually saved — the bench reports these.
  struct Stats {
    /// Cells that ran with real kernel computation (one verify donor per
    /// workload row that needed verification).
    std::size_t full_runs{0};
    /// Cells that ran model-only with a patched verification outcome.
    std::size_t model_runs{0};
    /// Cells started from a memoized warm-up prefix snapshot.
    std::size_t forked_cells{0};
    /// Warm-up iterations those forks did not have to re-simulate.
    std::size_t prefix_iterations_saved{0};
  };

  /// `plan` and `options` must outlive the engine.  `jobs` as in
  /// CampaignConfig::jobs (0 = hardware concurrency); parallelism is across
  /// workload rows.
  BatchCampaignEngine(const CampaignPlan& plan, const RunOptions& options,
                      std::size_t jobs);

  /// Resume support: mark cells whose results are already known (journal
  /// replay).  Skipped cells are neither run nor published; `done` must have
  /// plan.total() entries.
  void skip_completed(std::vector<char> done);

  /// Run every non-skipped cell, writing results into cells[i] (which must
  /// have plan.total() entries).  Byte-identical to the scalar engine's
  /// reports for the same plan/options.
  void run(std::vector<CampaignCell>& cells, const Hooks& hooks = {});

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  const CampaignPlan* plan_;
  const RunOptions* options_;
  std::size_t jobs_;
  std::vector<char> done_;
  Stats stats_;
};

}  // namespace gg::greengpu
