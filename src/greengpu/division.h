// The workload-division tier (Section V-B).
//
// After every iteration the controller compares the CPU chunk time `tc` with
// the GPU chunk time `tg` and moves the CPU share `r` one fixed step toward
// the slower side.  Because divisions are discrete, the share can oscillate
// around an optimum between two grid points; the safeguard linearly scales
// both measured times to the candidate share and holds the current division
// if the predicted ordering flips.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/units.h"
#include "src/greengpu/params.h"
#include "src/greengpu/telemetry.h"

namespace gg::greengpu {

/// Why the controller chose the ratio it chose (for traces and tests).
enum class DivisionAction {
  kIncreaseCpu,     // tc < tg: CPU finished first, give it more work
  kDecreaseCpu,     // tc > tg: CPU was the straggler, take work away
  kHold,            // times equal (within measurement) — keep the division
  kHoldSafeguard,   // a move was indicated but predicted to oscillate
  kHoldAtBound,     // a move was indicated but the ratio is at its bound
  kHoldDegraded,    // the iteration was degraded by faults — times are
                    // non-informative, keep the division unchanged
};

struct DivisionDecision {
  double ratio{0.0};  // CPU share enforced for the NEXT iteration
  DivisionAction action{DivisionAction::kHold};
};

/// What the runner measured for the iteration that just finished.
struct IterationFeedback {
  Seconds cpu_time{0.0};
  Seconds gpu_time{0.0};
  /// Total system energy of the iteration (model-based dividers use it;
  /// the paper's step heuristic does not).
  Joules total_energy{0.0};
  /// The iteration's times were distorted by injected faults (reroute,
  /// retry storm, thermal throttle): treat them as non-informative.  Only
  /// set by a hardened runner — the un-hardened baseline happily learns
  /// from the noise.
  bool degraded{false};
  /// DMA copy-engine activity of the iteration (busy time and the part
  /// overlapped with kernels).  Informational: the paper's step heuristic
  /// ignores both, but a transfer-aware divider can consult them.
  Seconds copy_busy_time{0.0};
  Seconds overlap_time{0.0};
};

/// Division-algorithm interface.  The paper's tier 1 is `DivisionController`;
/// Section V-B notes GreenGPU "can be integrated with other sophisticated
/// global optimal algorithms" — see model_dividers.h for two of those.
class Divider {
 public:
  virtual ~Divider() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  /// CPU share for the next iteration.
  [[nodiscard]] virtual double ratio() const = 0;
  /// Feed the just-finished iteration's measurements; returns the decision
  /// for the next iteration.
  virtual DivisionDecision update(const IterationFeedback& feedback) = 0;
  /// True once the divider has held the same ratio for `streak` straight
  /// decisions.
  [[nodiscard]] virtual bool converged(int streak = 2) const = 0;
  virtual void reset() = 0;
  /// Replace the decision-retention policy of the divider's per-iteration
  /// log, if it keeps one (clears retained decisions).  Default: no-op for
  /// dividers without a log.
  virtual void set_record(RecordOptions /*opts*/) {}

  /// Serialize the divider's learned state (ratio, streaks, rate filters,
  /// retained history).  Restoring into a divider of the same kind and
  /// configuration continues the exact decision stream.
  virtual void save(common::SnapshotWriter& w) const = 0;
  /// Counterpart of save(); throws common::SnapshotError on mismatch.
  virtual void load(common::SnapshotReader& r) = 0;
};

/// The paper's light-weight step heuristic with the oscillation safeguard.
class DivisionController final : public Divider {
 public:
  explicit DivisionController(DivisionParams params);

  [[nodiscard]] std::string_view name() const override { return "step"; }
  [[nodiscard]] double ratio() const override { return ratio_; }

  DivisionDecision update(const IterationFeedback& feedback) override {
    if (feedback.degraded) return hold_degraded();
    return update(feedback.cpu_time, feedback.gpu_time);
  }

  /// Feed the measured times of the just-finished iteration executed at the
  /// current ratio; returns the decision for the next iteration.
  DivisionDecision update(Seconds cpu_time, Seconds gpu_time);

  /// True once the controller has held the same ratio for `streak` straight
  /// decisions (the convergence criterion used in the Fig. 7 analysis).
  [[nodiscard]] bool converged(int streak = 2) const override {
    return hold_streak_ >= streak;
  }

  [[nodiscard]] const DivisionParams& params() const { return params_; }
  /// Retained decision history (everything in kFull record mode — the
  /// default; empty under kRing/kCounters, see history_snapshot()).
  [[nodiscard]] const std::vector<DivisionDecision>& history() const {
    return history_.log();
  }
  /// Retained decisions, oldest first, under any record mode.
  [[nodiscard]] std::vector<DivisionDecision> history_snapshot() const {
    return history_.snapshot();
  }
  /// Decisions taken over the controller's lifetime, independent of
  /// retention.
  [[nodiscard]] std::uint64_t decision_count() const { return history_.total(); }
  void set_record(RecordOptions opts) override {
    history_ = DecisionRecorder<DivisionDecision>(opts);
  }

  void reset() override;

  void save(common::SnapshotWriter& w) const override;
  void load(common::SnapshotReader& r) override;

 private:
  DivisionDecision decide(Seconds tc, Seconds tg) const;
  /// Record a kHoldDegraded decision at the current ratio; the hold streak
  /// is left untouched (a degraded iteration is no evidence either way).
  DivisionDecision hold_degraded();

  DivisionParams params_;
  double ratio_;
  int hold_streak_{0};
  DecisionRecorder<DivisionDecision> history_;
};

/// Pure form of one division decision, exposed for property tests:
/// given (tc, tg) measured at `ratio`, return the next ratio per the
/// paper's rules.
[[nodiscard]] DivisionDecision division_step(const DivisionParams& params, double ratio,
                                             Seconds cpu_time, Seconds gpu_time);

}  // namespace gg::greengpu
