#include "src/greengpu/wma_scaler.h"

#include <stdexcept>

namespace gg::greengpu {

GpuFrequencyScaler::GpuFrequencyScaler(cudalite::NvmlDevice& nvml,
                                       cudalite::NvSettings& settings, WmaParams params)
    : nvml_(&nvml),
      settings_(&settings),
      params_(params),
      core_umean_(umean_table(settings.core_table())),
      mem_umean_(umean_table(settings.mem_table())),
      core_filter_(params.util_filter_alpha),
      mem_filter_(params.util_filter_alpha),
      table_(settings.core_table().levels(), settings.mem_table().levels()) {
  if (params_.util_filter_alpha <= 0.0 || params_.util_filter_alpha > 1.0) {
    throw std::invalid_argument("WmaParams: util_filter_alpha must be in (0,1]");
  }
}

ScalerDecision GpuFrequencyScaler::step(Seconds now) {
  // 1. Read GPU core and memory utilizations (integer percent, like the
  //    nvidia-smi tool the paper polls).
  const cudalite::UtilizationRates rates = nvml_->utilization_rates();
  const double uc_raw = static_cast<double>(rates.gpu) / 100.0;
  const double um_raw = static_cast<double>(rates.memory) / 100.0;
  // Optional measurement-side noise filter (alpha = 1 passes through).
  const double uc = core_filter_.update(uc_raw);
  const double um = mem_filter_.update(um_raw);

  // 2. Per-level core and memory loss factors (Eq. 1 and Eq. 2).
  std::vector<double> core_losses(core_umean_.size());
  for (std::size_t i = 0; i < core_umean_.size(); ++i) {
    core_losses[i] = component_loss(uc, core_umean_[i], params_.alpha_core);
  }
  std::vector<double> mem_losses(mem_umean_.size());
  for (std::size_t j = 0; j < mem_umean_.size(); ++j) {
    mem_losses[j] = component_loss(um, mem_umean_[j], params_.alpha_mem);
  }

  // 3. Update weight[N][M] (Eq. 3 + Eq. 4) and enforce the argmax pair.
  table_.update(core_losses, mem_losses, params_.phi, params_.beta, params_.weight_floor);
  const PairIndex chosen = table_.argmax();
  settings_->set_clock_levels(chosen.core, chosen.mem);

  ++steps_;
  const ScalerDecision d{now, uc_raw, um_raw, uc, um, chosen};
  decisions_.push_back(d);
  return d;
}

void GpuFrequencyScaler::attach(sim::EventQueue& queue) {
  detach();
  attached_queue_ = &queue;
  arm(queue);
}

void GpuFrequencyScaler::arm(sim::EventQueue& queue) {
  next_ = queue.schedule_in(params_.interval, [this, &queue] {
    step(queue.now());
    arm(queue);
  });
}

void GpuFrequencyScaler::detach() {
  next_.cancel();
  attached_queue_ = nullptr;
}

void GpuFrequencyScaler::reset() {
  table_.reset();
  core_filter_ = Ewma(params_.util_filter_alpha);
  mem_filter_ = Ewma(params_.util_filter_alpha);
  decisions_.clear();
  steps_ = 0;
}

}  // namespace gg::greengpu
