#include "src/greengpu/wma_scaler.h"

#include <algorithm>
#include <stdexcept>

#include "src/common/annotations.h"
#include "src/common/killpoint.h"
#include "src/common/snapshot.h"

namespace gg::greengpu {

GpuFrequencyScaler::GpuFrequencyScaler(cudalite::NvmlDevice& nvml,
                                       cudalite::NvSettings& settings, WmaParams params)
    : nvml_(&nvml),
      settings_(&settings),
      params_(params),
      core_umean_(umean_table(settings.core_table())),
      mem_umean_(umean_table(settings.mem_table())),
      core_filter_(params.util_filter_alpha),
      mem_filter_(params.util_filter_alpha),
      table_(settings.core_table().levels(), settings.mem_table().levels()),
      core_loss_q_(core_umean_, params.alpha_core, params.phi),
      mem_loss_q_(mem_umean_, params.alpha_mem, 1.0 - params.phi),
      one_minus_beta_(1.0 - params.beta),
      quantized_applies_(params.util_filter_alpha == 1.0),
      scratch_core_(core_umean_.size(), 0.0),
      scratch_mem_(mem_umean_.size(), 0.0) {
  if (params_.util_filter_alpha <= 0.0 || params_.util_filter_alpha > 1.0) {
    throw std::invalid_argument("WmaParams: util_filter_alpha must be in (0,1]");
  }
  if (params_.min_window_frac < 0.0 || params_.min_window_frac > 1.0) {
    throw std::invalid_argument("WmaParams: min_window_frac must be in [0,1]");
  }
  if (params_.actuation_retries < 0) {
    throw std::invalid_argument("WmaParams: actuation_retries must be >= 0");
  }
  // The reference path surfaces these through total_loss/updated_weight on
  // the first step; the fast path pre-folds both constants, so reject bad
  // values up front.  (alpha_core/alpha_mem are validated by the
  // QuantizedLossTable constructors via component_loss.)
  if (params_.phi < 0.0 || params_.phi > 1.0) {
    throw std::invalid_argument("WmaParams: phi must be in [0,1]");
  }
  if (params_.beta <= 0.0 || params_.beta >= 1.0) {
    throw std::invalid_argument("WmaParams: beta must be in (0,1)");
  }
}

ScalerDecision GpuFrequencyScaler::step(Seconds now) {
  common::killpoint(common::KillPoint::kPreScalerStep);
  const ScalerDecision decision =
      params_.reference_impl ? step_reference(now) : step_fast(now);
  common::killpoint(common::KillPoint::kPostScalerStep);
  return decision;
}

GG_HOT ScalerDecision GpuFrequencyScaler::step_fast(Seconds now) {
  // A fresh step supersedes any asynchronous actuation retry in flight.
  retry_.cancel();

  // 1. Read GPU core and memory utilizations (integer percent, like the
  //    nvidia-smi tool the paper polls).
  const cudalite::UtilizationSample sample = nvml_->try_utilization_rates();
  const double uc_raw = static_cast<double>(sample.rates.gpu) / 100.0;
  const double um_raw = static_cast<double>(sample.rates.memory) / 100.0;

  const bool stale =
      !sample.ok() || sample.window.get() < params_.interval.get() * params_.min_window_frac;
  if (params_.harden && stale) {
    ++steps_;
    ++held_steps_;
    // The table is unchanged since the last update, so the cached argmax is
    // exactly what the reference path's rescan would return.
    ScalerDecision d{now, uc_raw, um_raw, core_filter_.value(), mem_filter_.value(),
                     argmax_};
    d.sample_ok = false;
    decisions_.push(d);
    return d;
  }

  // Optional copy-engine observation: a saturated DMA engine rides the
  // memory clock, so fold its busy fraction into the memory-domain view
  // before the loss lookup.  Integer-percent max, so the quantized rows
  // stay exact.
  unsigned mem_pct = sample.rates.memory;
  double ce_busy = 0.0;
  double ce_overlap = 0.0;
  if (params_.observe_copy_engine) {
    const cudalite::CopyEngineRates ce = nvml_->copy_engine_rates();
    ce_busy = static_cast<double>(ce.busy) / 100.0;
    ce_overlap = static_cast<double>(ce.overlap) / 100.0;
    if (ce.busy > mem_pct) mem_pct = ce.busy;
  }

  // Optional measurement-side noise filter (alpha = 1 passes through).
  const double uc = core_filter_.update(uc_raw);
  const double um = mem_filter_.update(static_cast<double>(mem_pct) / 100.0);

  // 2.+3. Eq. 1-4 as one fused pass.  With the filter off, the filtered
  // utilization IS the integer-percent sample (Ewma with alpha = 1 returns
  // its input bit-exactly), so the pre-blended quantized rows are the exact
  // per-level losses; with the filter on, fill the preallocated scratch
  // rows from the continuous utilization instead.  Either way: no
  // allocations, one decay pass, one renormalize pass that carries the
  // argmax.
  const double* core_row;
  const double* mem_row;
  if (quantized_applies_) {
    core_row = core_loss_q_.row(sample.rates.gpu);
    mem_row = mem_loss_q_.row(mem_pct);
  } else {
    for (std::size_t i = 0; i < scratch_core_.size(); ++i) {
      scratch_core_[i] = params_.phi * component_loss(uc, core_umean_[i], params_.alpha_core);
    }
    for (std::size_t j = 0; j < scratch_mem_.size(); ++j) {
      scratch_mem_[j] =
          (1.0 - params_.phi) * component_loss(um, mem_umean_[j], params_.alpha_mem);
    }
    core_row = scratch_core_.data();
    mem_row = scratch_mem_.data();
  }
  const PairIndex chosen =
      table_.update_fused(core_row, mem_row, one_minus_beta_, params_.weight_floor);
  argmax_ = chosen;

  bool applied = true;
  if (params_.harden) {
    applied = actuate(chosen);
    if (!applied) ++actuation_failures_;
  } else {
    settings_->set_clock_levels(chosen.core, chosen.mem);
  }

  ++steps_;
  ScalerDecision d{now, uc_raw, um_raw, uc, um, chosen};
  d.actuation_ok = applied;
  d.copy_busy_util = ce_busy;
  d.overlap_util = ce_overlap;
  decisions_.push(d);
  return d;
}

// The straight-line transcription of Algorithm 1 (the seed implementation):
// per-step loss vectors, checked per-cell Eq. 3/4 calls, a full argmax
// rescan.  Kept verbatim as the oracle for the equivalence suite and the
// baseline for the scaler-step microbenchmarks.
ScalerDecision GpuFrequencyScaler::step_reference(Seconds now) {
  // A fresh step supersedes any asynchronous actuation retry in flight.
  retry_.cancel();

  // 1. Read GPU core and memory utilizations (integer percent, like the
  //    nvidia-smi tool the paper polls).
  const cudalite::UtilizationSample sample = nvml_->try_utilization_rates();
  const double uc_raw = static_cast<double>(sample.rates.gpu) / 100.0;
  const double um_raw = static_cast<double>(sample.rates.memory) / 100.0;

  // Hardened stale-sample detection: a failed read or a window much shorter
  // than the scaling interval carries no new information — hold the weights
  // and keep the current pair instead of learning from noise.
  const bool stale =
      !sample.ok() || sample.window.get() < params_.interval.get() * params_.min_window_frac;
  if (params_.harden && stale) {
    ++steps_;
    ++held_steps_;
    ScalerDecision d{now, uc_raw, um_raw, core_filter_.value(), mem_filter_.value(),
                     table_.argmax()};
    d.sample_ok = false;
    decisions_.push(d);
    return d;
  }

  // Optional copy-engine observation, identical to the fast path: the
  // effective memory utilization is max(measured, copy-engine busy) on
  // integer percents.
  unsigned mem_pct = sample.rates.memory;
  double ce_busy = 0.0;
  double ce_overlap = 0.0;
  if (params_.observe_copy_engine) {
    const cudalite::CopyEngineRates ce = nvml_->copy_engine_rates();
    ce_busy = static_cast<double>(ce.busy) / 100.0;
    ce_overlap = static_cast<double>(ce.overlap) / 100.0;
    if (ce.busy > mem_pct) mem_pct = ce.busy;
  }

  // Optional measurement-side noise filter (alpha = 1 passes through).
  const double uc = core_filter_.update(uc_raw);
  const double um = mem_filter_.update(static_cast<double>(mem_pct) / 100.0);

  // 2. Per-level core and memory loss factors (Eq. 1 and Eq. 2).
  std::vector<double> core_losses(core_umean_.size());
  for (std::size_t i = 0; i < core_umean_.size(); ++i) {
    core_losses[i] = component_loss(uc, core_umean_[i], params_.alpha_core);
  }
  std::vector<double> mem_losses(mem_umean_.size());
  for (std::size_t j = 0; j < mem_umean_.size(); ++j) {
    mem_losses[j] = component_loss(um, mem_umean_[j], params_.alpha_mem);
  }

  // 3. Update weight[N][M] (Eq. 3 + Eq. 4) and enforce the argmax pair.
  table_.update(core_losses, mem_losses, params_.phi, params_.beta, params_.weight_floor);
  const PairIndex chosen = table_.argmax();
  argmax_ = chosen;
  bool applied = true;
  if (params_.harden) {
    applied = actuate(chosen);
    if (!applied) ++actuation_failures_;
  } else {
    settings_->set_clock_levels(chosen.core, chosen.mem);
  }

  ++steps_;
  ScalerDecision d{now, uc_raw, um_raw, uc, um, chosen};
  d.actuation_ok = applied;
  d.copy_busy_util = ce_busy;
  d.overlap_util = ce_overlap;
  decisions_.push(d);
  return d;
}

bool GpuFrequencyScaler::actuate(PairIndex pair) {
  for (int attempt = 0; attempt <= params_.actuation_retries; ++attempt) {
    const cudalite::ClockWriteResult r =
        settings_->set_clock_levels_checked(pair.core, pair.mem);
    switch (r.status) {
      case cudalite::ClockWriteStatus::kApplied:
        return true;
      case cudalite::ClockWriteStatus::kDelayed:
        // In flight: the driver will land it; nothing more to do.
        return true;
      case cudalite::ClockWriteStatus::kThrottled:
        // Don't fight a thermal episode — the injector restores the latest
        // requested pair when the episode ends.
        return false;
      case cudalite::ClockWriteStatus::kClamped:
      case cudalite::ClockWriteStatus::kRejected:
        // Each clamp moves one level toward the target; a reject leaves the
        // clocks unchanged.  Either way, re-issue immediately (bounded).
        break;
    }
  }
  // Immediate retries exhausted: fall back to asynchronous backoff so the
  // pair still lands before the next interval if the driver recovers.
  schedule_retry(pair, 0);
  return false;
}

void GpuFrequencyScaler::schedule_retry(PairIndex pair, int attempt) {
  if (attached_queue_ == nullptr) return;
  double delay = params_.actuation_backoff.get();
  for (int i = 0; i < attempt; ++i) delay *= 2.0;
  delay = std::min(delay, params_.interval.get());
  retry_.cancel();
  retry_ = attached_queue_->schedule_in(Seconds{delay}, [this, pair, attempt] {
    const cudalite::ClockWriteResult r =
        settings_->set_clock_levels_checked(pair.core, pair.mem);
    if (r.status == cudalite::ClockWriteStatus::kRejected ||
        r.status == cudalite::ClockWriteStatus::kClamped) {
      schedule_retry(pair, attempt + 1);
    }
  });
}

void GpuFrequencyScaler::attach(sim::EventQueue& queue) {
  detach();
  attached_queue_ = &queue;
  arm(queue);
}

void GpuFrequencyScaler::attach_at(sim::EventQueue& queue, Seconds first_step) {
  detach();
  attached_queue_ = &queue;
  next_ = queue.schedule_at(first_step, [this, &queue] {
    step(queue.now());
    arm(queue);
  });
}

void GpuFrequencyScaler::arm(sim::EventQueue& queue) {
  next_ = queue.schedule_in(params_.interval, [this, &queue] {
    step(queue.now());
    arm(queue);
  });
}

void GpuFrequencyScaler::detach() {
  next_.cancel();
  retry_.cancel();
  attached_queue_ = nullptr;
}

void GpuFrequencyScaler::reset() {
  table_.reset();
  core_filter_ = Ewma(params_.util_filter_alpha);
  mem_filter_ = Ewma(params_.util_filter_alpha);
  argmax_ = PairIndex{0, 0};
  decisions_.clear();
  steps_ = 0;
  held_steps_ = 0;
  actuation_failures_ = 0;
  retry_.cancel();
}

namespace {
void save_decision(common::SnapshotWriter& w, const ScalerDecision& d) {
  w.f64(d.time.get());
  w.f64(d.core_util);
  w.f64(d.mem_util);
  w.f64(d.filtered_core_util);
  w.f64(d.filtered_mem_util);
  w.u64(d.chosen.core);
  w.u64(d.chosen.mem);
  w.b(d.sample_ok);
  w.b(d.actuation_ok);
  w.f64(d.copy_busy_util);
  w.f64(d.overlap_util);
}

ScalerDecision load_decision(common::SnapshotReader& r) {
  ScalerDecision d;
  d.time = Seconds{r.f64()};
  d.core_util = r.f64();
  d.mem_util = r.f64();
  d.filtered_core_util = r.f64();
  d.filtered_mem_util = r.f64();
  d.chosen.core = static_cast<std::size_t>(r.u64());
  d.chosen.mem = static_cast<std::size_t>(r.u64());
  d.sample_ok = r.b();
  d.actuation_ok = r.b();
  d.copy_busy_util = r.f64();
  d.overlap_util = r.f64();
  return d;
}
}  // namespace

void GpuFrequencyScaler::save(common::SnapshotWriter& w) const {
  table_.save(w);
  w.f64(core_filter_.value());
  w.b(core_filter_.seeded());
  w.f64(mem_filter_.value());
  w.b(mem_filter_.seeded());
  w.u64(argmax_.core);
  w.u64(argmax_.mem);
  w.u64(steps_);
  w.u64(held_steps_);
  w.u64(actuation_failures_);
  decisions_.save(w, save_decision);
}

void GpuFrequencyScaler::load(common::SnapshotReader& r) {
  table_.load(r);
  const double core_value = r.f64();
  const bool core_seeded = r.b();
  core_filter_.restore(core_value, core_seeded);
  const double mem_value = r.f64();
  const bool mem_seeded = r.b();
  mem_filter_.restore(mem_value, mem_seeded);
  argmax_.core = static_cast<std::size_t>(r.u64());
  argmax_.mem = static_cast<std::size_t>(r.u64());
  steps_ = r.u64();
  held_steps_ = r.u64();
  actuation_failures_ = r.u64();
  decisions_.load(r, load_decision);
}

}  // namespace gg::greengpu
