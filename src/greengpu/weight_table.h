// Core-memory frequency-pair weight tables for the WMA scaler.
//
// Two implementations share one concept:
//  * `WeightTable` — double precision, used by the software daemon;
//  * `FixedWeightTable` — 8-bit Q0.8 entries, validating the Section VI
//    claim that a 36-byte table with shift-add update logic is "accurate
//    enough for the purpose of picking up the largest weight".
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "src/common/fixed_point.h"
#include "src/greengpu/params.h"

namespace gg::common {
class SnapshotWriter;
class SnapshotReader;
}  // namespace gg::common

namespace gg::greengpu {

/// Index of a (core level, memory level) pair.
struct PairIndex {
  std::size_t core{0};
  std::size_t mem{0};
  friend bool operator==(const PairIndex&, const PairIndex&) = default;
};

class WeightTable {
 public:
  /// All weights start equal (no preference in the initial state).
  WeightTable(std::size_t core_levels, std::size_t mem_levels);

  [[nodiscard]] std::size_t core_levels() const { return n_; }
  [[nodiscard]] std::size_t mem_levels() const { return m_; }
  [[nodiscard]] double weight(std::size_t core, std::size_t mem) const;

  /// Apply Eq. 4 to every entry given per-level core and memory losses
  /// (vectors of length core_levels / mem_levels), then renormalize so the
  /// maximum weight is 1 and apply the relative floor.
  void update(const std::vector<double>& core_losses,
              const std::vector<double>& mem_losses, double phi, double beta,
              double weight_floor);

  /// Fused fast path: one decay pass plus one renormalize/floor pass that
  /// tracks the running argmax in place of update() + a third argmax()
  /// scan.  Takes *pre-blended* per-level losses — `scaled_core_losses[i]`
  /// must equal `phi * core_loss_i` and `scaled_mem_losses[j]` must equal
  /// `(1 - phi) * mem_loss_j` (exactly what QuantizedLossTable rows built
  /// with those scales hold) — and the precomputed `1 - beta`.  Produces
  /// bit-identical weights and the identical argmax (same scan order, same
  /// strict-> tie-break toward higher frequencies) as
  /// `update(...); argmax();`, with zero allocations and no per-cell
  /// argument validation.  Pointers must cover core_levels()/mem_levels()
  /// entries; no bounds are checked.
  PairIndex update_fused(const double* scaled_core_losses,
                         const double* scaled_mem_losses, double one_minus_beta,
                         double weight_floor);

  /// Pair with the highest weight; ties break toward higher frequencies
  /// (lower indices), the performance-safe choice.
  [[nodiscard]] PairIndex argmax() const;

  void reset();

  /// Serialize dimensions + weights (raw f64 bits, so restore is
  /// bit-identical).
  void save(common::SnapshotWriter& w) const;
  /// Restore into a table of the same dimensions; dimension mismatch throws
  /// common::SnapshotError (dimensions are configuration, not state).
  void load(common::SnapshotReader& r);

 private:
  [[nodiscard]] std::size_t idx(std::size_t core, std::size_t mem) const {
    return core * m_ + mem;
  }
  std::size_t n_;
  std::size_t m_;
  std::vector<double> w_;
};

/// Section VI hardware sketch: N x M bytes of Q0.8 weights.  The update is
/// expressed with fixed-point multiplies (what the shift-add datapath
/// computes); renormalization doubles all entries while the maximum is below
/// half scale, preserving order.
class FixedWeightTable {
 public:
  FixedWeightTable(std::size_t core_levels, std::size_t mem_levels);

  [[nodiscard]] std::size_t core_levels() const { return n_; }
  [[nodiscard]] std::size_t mem_levels() const { return m_; }
  [[nodiscard]] UQ08 weight(std::size_t core, std::size_t mem) const;
  /// Table storage footprint in bytes (6x6 levels -> 36 bytes, as in the
  /// paper).
  [[nodiscard]] std::size_t storage_bytes() const { return w_.size(); }

  void update(const std::vector<double>& core_losses,
              const std::vector<double>& mem_losses, double phi, double beta);

  /// Fused twin of WeightTable::update_fused for the Q0.8 datapath: the
  /// per-pair loss is the sum of pre-blended rows, the subtractive update
  /// tracks the running maximum, and the doubling renormalization is folded
  /// into a single left-shift pass (shift count derived from the maximum —
  /// doubling preserves order and ties exactly, so the argmax tracked
  /// before the shift is the argmax after it).  `one_minus_beta_raw` is
  /// `UQ08::from_double(1 - beta).raw()`.  Bit-identical to
  /// `update(...); argmax();`.
  PairIndex update_fused(const double* scaled_core_losses,
                         const double* scaled_mem_losses,
                         std::uint32_t one_minus_beta_raw);

  [[nodiscard]] PairIndex argmax() const;

  void reset();

  /// See WeightTable::save/load; entries round-trip as their raw Q0.8 bytes.
  void save(common::SnapshotWriter& w) const;
  void load(common::SnapshotReader& r);

 private:
  [[nodiscard]] std::size_t idx(std::size_t core, std::size_t mem) const {
    return core * m_ + mem;
  }
  std::size_t n_;
  std::size_t m_;
  std::vector<UQ08> w_;
};

}  // namespace gg::greengpu
