// Pluggable CPU frequency governors.
//
// The paper uses the stock Linux *ondemand* policy for the CPU tier and
// notes that "other more sophisticated DVFS-based processor power management
// strategies ... can also be integrated into GreenGPU" (Section IV).  This
// header provides that integration point: a `CpuGovernor` interface with the
// linux-classic governors (performance, powersave, ondemand, conservative)
// plus a WMA-based learner that applies the paper's own Section V-A
// machinery to the CPU's P-states.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/greengpu/params.h"
#include "src/greengpu/telemetry.h"
#include "src/greengpu/weight_table.h"
#include "src/sim/event_queue.h"
#include "src/sim/monitor.h"
#include "src/sim/platform.h"

namespace gg::greengpu {

struct GovernorDecision {
  Seconds time{0.0};
  double util{0.0};
  std::size_t level{0};
};

/// Base class: periodic sampling plumbing and decision recording.
/// Subclasses implement `decide` mapping a windowed utilization to a P-state.
class CpuGovernor {
 public:
  virtual ~CpuGovernor() { detach(); }

  CpuGovernor(const CpuGovernor&) = delete;
  CpuGovernor& operator=(const CpuGovernor&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// One sampling step: read utilization, decide, enforce, record.
  GovernorDecision step(Seconds now);

  /// Start/stop periodic invocation on the platform's queue.
  void attach();
  void detach();
  /// Start periodic invocation with the first step at the absolute instant
  /// `first_step` (must be >= now); used when restoring a saved run so the
  /// sampling phase continues exactly where the donor run left off.
  void attach_at(Seconds first_step);

  /// Serialize the governor's windowed-sampling and telemetry state (plus
  /// any learned state in subclasses).  A governor restored from this
  /// snapshot continues the exact decision stream the saved one would have
  /// produced.  Parameters are configuration: load() into a governor built
  /// with the same kind/params.
  virtual void save(common::SnapshotWriter& w) const;
  virtual void load(common::SnapshotReader& r);

  [[nodiscard]] Seconds interval() const { return interval_; }
  /// Retained decision log (everything in kFull record mode — the default;
  /// empty under kRing/kCounters, see decisions_snapshot()).
  [[nodiscard]] const std::vector<GovernorDecision>& decisions() const {
    return decisions_.log();
  }
  /// Retained decisions, oldest first, under any record mode.
  [[nodiscard]] std::vector<GovernorDecision> decisions_snapshot() const {
    return decisions_.snapshot();
  }
  /// Decisions taken over the governor's lifetime, independent of retention.
  [[nodiscard]] std::uint64_t decision_count() const { return decisions_.total(); }
  /// Replace the decision-retention policy (clears retained decisions).
  void set_record(RecordOptions opts) {
    decisions_ = DecisionRecorder<GovernorDecision>(opts);
  }
  [[nodiscard]] std::uint64_t steps() const { return steps_; }

 protected:
  CpuGovernor(sim::Platform& platform, Seconds interval);

  /// Map the windowed utilization (package, [0,1]) to the next P-state.
  [[nodiscard]] virtual std::size_t decide(double util) = 0;

  [[nodiscard]] sim::Platform& platform() { return *platform_; }
  [[nodiscard]] const sim::DvfsTable& table() const { return platform_->cpu().table(); }
  [[nodiscard]] std::size_t current_level() const { return platform_->cpu().level(); }

 private:
  void arm();

  sim::Platform* platform_;
  Seconds interval_;
  sim::CpuUtilSampler sampler_;
  DecisionRecorder<GovernorDecision> decisions_;
  std::uint64_t steps_{0};
  sim::EventHandle next_;
};

/// linux `performance`: pin the highest frequency.
class PerformanceGovernor final : public CpuGovernor {
 public:
  explicit PerformanceGovernor(sim::Platform& platform, Seconds interval = Seconds{0.1})
      : CpuGovernor(platform, interval) {}
  [[nodiscard]] std::string_view name() const override { return "performance"; }

 protected:
  std::size_t decide(double /*util*/) override { return 0; }
};

/// linux `powersave`: pin the lowest frequency.
class PowersaveGovernor final : public CpuGovernor {
 public:
  explicit PowersaveGovernor(sim::Platform& platform, Seconds interval = Seconds{0.1})
      : CpuGovernor(platform, interval) {}
  [[nodiscard]] std::string_view name() const override { return "powersave"; }

 protected:
  std::size_t decide(double /*util*/) override { return table().lowest_level(); }
};

/// The paper's CPU policy (Section IV, linux-2.6.9 semantics): above the
/// upper threshold jump straight to the peak; below the low threshold step
/// down one level.
class OndemandGovernor final : public CpuGovernor {
 public:
  OndemandGovernor(sim::Platform& platform, OndemandParams params)
      : CpuGovernor(platform, params.interval), params_(params) {}
  [[nodiscard]] std::string_view name() const override { return "ondemand"; }
  [[nodiscard]] const OndemandParams& params() const { return params_; }

 protected:
  std::size_t decide(double util) override;

 private:
  OndemandParams params_;
};

/// linux `conservative`: graceful one-step moves in both directions.
class ConservativeGovernor final : public CpuGovernor {
 public:
  ConservativeGovernor(sim::Platform& platform, OndemandParams params)
      : CpuGovernor(platform, params.interval), params_(params) {}
  [[nodiscard]] std::string_view name() const override { return "conservative"; }

 protected:
  std::size_t decide(double util) override;

 private:
  OndemandParams params_;
};

/// The paper's own WMA learner (Section V-A) applied to the CPU P-states:
/// a 1-D weight table over levels with the Table I loss and the linear
/// umean mapping.  This is the "more sophisticated strategy" integration
/// the paper gestures at.
class WmaCpuGovernor final : public CpuGovernor {
 public:
  /// `alpha` blends energy vs performance loss (Table I); `beta` and
  /// `weight_floor` as in WmaParams.
  WmaCpuGovernor(sim::Platform& platform, Seconds interval = Seconds{0.1},
                 double alpha = 0.15, double beta = 0.2, double weight_floor = 1e-2);
  [[nodiscard]] std::string_view name() const override { return "wma"; }
  [[nodiscard]] const WeightTable& weights() const { return table_; }

  void save(common::SnapshotWriter& w) const override;
  void load(common::SnapshotReader& r) override;

 protected:
  std::size_t decide(double util) override;

 private:
  double alpha_;
  double one_minus_beta_;
  double weight_floor_;
  std::vector<double> umean_;
  WeightTable table_;  // levels x 1
  /// Preallocated per-level loss row for the fused allocation-free update
  /// (the governor runs ~30x more often than the GPU scaler, so per-step
  /// vector churn mattered even more here).
  std::vector<double> scratch_losses_;
};

/// Governor selector for policies and the CLI.
enum class CpuGovernorKind {
  kNone,          // leave the CPU at its current (peak) P-state
  kPerformance,
  kPowersave,
  kOndemand,      // the paper's choice
  kConservative,
  kWma,
};

[[nodiscard]] std::string_view to_string(CpuGovernorKind kind);
[[nodiscard]] CpuGovernorKind cpu_governor_from_string(std::string_view name);

/// Factory.  Returns nullptr for kNone.
[[nodiscard]] std::unique_ptr<CpuGovernor> make_cpu_governor(CpuGovernorKind kind,
                                                             sim::Platform& platform,
                                                             const OndemandParams& params);

}  // namespace gg::greengpu
