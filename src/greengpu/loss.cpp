#include "src/greengpu/loss.h"

#include <stdexcept>

#include "src/common/units.h"

namespace gg::greengpu {

std::vector<double> umean_table(const sim::DvfsTable& table) {
  std::vector<double> u(table.levels());
  for (std::size_t i = 0; i < table.levels(); ++i) u[i] = table.range_fraction(i);
  return u;
}

LevelLoss raw_loss(double u, double umean_i) {
  u = clamp_unit(u);
  umean_i = clamp_unit(umean_i);
  LevelLoss l;
  if (u > umean_i) {
    // The workload stresses the resource more than this level delivers:
    // choosing it would cost performance.
    l.performance = u - umean_i;
  } else {
    // The level delivers more than the workload needs: energy is wasted.
    l.energy = umean_i - u;
  }
  return l;
}

double component_loss(double u, double umean_i, double alpha) {
  if (alpha < 0.0 || alpha > 1.0) throw std::invalid_argument("alpha must be in [0,1]");
  const LevelLoss l = raw_loss(u, umean_i);
  return alpha * l.energy + (1.0 - alpha) * l.performance;
}

double total_loss(double core_loss, double mem_loss, double phi) {
  if (phi < 0.0 || phi > 1.0) throw std::invalid_argument("phi must be in [0,1]");
  return phi * core_loss + (1.0 - phi) * mem_loss;
}

double updated_weight(double weight, double loss, double beta) {
  if (beta <= 0.0 || beta >= 1.0) throw std::invalid_argument("beta must be in (0,1)");
  if (loss < 0.0 || loss > 1.0) throw std::invalid_argument("loss must be in [0,1]");
  return weight * (1.0 - (1.0 - beta) * loss);
}

QuantizedLossTable::QuantizedLossTable(const std::vector<double>& umean, double alpha,
                                       double scale)
    : levels_(umean.size()), rows_(101 * umean.size()) {
  for (unsigned pct = 0; pct <= 100; ++pct) {
    for (std::size_t i = 0; i < levels_; ++i) {
      // The exact expression the reference path evaluates per step: the
      // runtime utilization is static_cast<double>(integer percent) / 100.0.
      rows_[pct * levels_ + i] =
          scale * component_loss(static_cast<double>(pct) / 100.0, umean[i], alpha);
    }
  }
}

}  // namespace gg::greengpu
