#include "src/service/admission.h"

#include <stdexcept>

#include "src/common/annotations.h"

namespace gg::service {

namespace {

/// "a should run before / outlive b": higher priority first, then older.
bool outranks(const Request& a, const Request& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  return a.seq < b.seq;
}

}  // namespace

AdmissionController::AdmissionController(std::size_t capacity,
                                         double default_cost_estimate)
    : queue_(capacity), default_cost_(default_cost_estimate) {
  if (default_cost_estimate <= 0.0) {
    throw std::invalid_argument(
        "AdmissionController: default_cost_estimate must be > 0");
  }
}

AdmissionController::Decision AdmissionController::offer(Request r,
                                                         Seconds inflight_cost,
                                                         bool draining) {
  Decision decision;
  if (draining) {
    decision.reason = "draining";
    return decision;
  }
  if (r.deadline.get() > 0.0) {
    // Everything that will run before this request, conservatively.
    double wait = inflight_cost.get();
    for (const Request& queued : queue_.items()) {
      if (outranks(queued, r)) wait += estimate(queued.workload, queued.policy).get();
    }
    wait += estimate(r.workload, r.policy).get();
    if (wait > r.deadline.get()) {
      decision.reason = "deadline-unmeetable";
      return decision;
    }
  }
  if (queue_.full()) {
    // Displace the lowest-priority queued request only if the arrival
    // strictly outranks it; otherwise the arrival itself is shed.
    const auto& items = queue_.items();
    std::size_t worst = 0;
    for (std::size_t i = 1; i < items.size(); ++i) {
      if (outranks(items[worst], items[i])) worst = i;
    }
    if (!(r.priority > items[worst].priority)) {
      decision.reason = "queue-full";
      return decision;
    }
    decision.evicted = queue_.evict_worst(outranks);
  }
  // GG_BOUNDED(capacity enforced by BoundedQueue; eviction freed a slot)
  if (!queue_.try_push(std::move(r))) {
    throw std::logic_error("AdmissionController: push after eviction failed");
  }
  decision.admitted = true;
  return decision;
}

void AdmissionController::requeue(Request r) {
  // GG_BOUNDED(resume re-queues at most capacity journaled requests)
  if (!queue_.try_push(std::move(r))) {
    throw std::logic_error(
        "AdmissionController: resume found more pending requests than the "
        "queue capacity — journal and configuration disagree");
  }
}

std::optional<Request> AdmissionController::next() {
  return queue_.pop_best(outranks);
}

void AdmissionController::observe_cost(const std::string& workload,
                                       const std::string& policy,
                                       Seconds exec_time) {
  // GG_BOUNDED(one entry per (workload, policy) pair; both sets are finite)
  double& slot = observed_costs_[{workload, policy}];
  if (exec_time.get() > slot) slot = exec_time.get();
}

Seconds AdmissionController::estimate(const std::string& workload,
                                              const std::string& policy) const {
  const auto it = observed_costs_.find({workload, policy});
  if (it == observed_costs_.end()) return Seconds{default_cost_};
  return Seconds{it->second};
}

}  // namespace gg::service
