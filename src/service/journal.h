// The greengpud service journal: the daemon's single source of truth.
//
// Every admission decision (admit or shed) and every outcome is appended
// here the moment it happens, CRC-framed through common::Journal (magic
// "GGSL", so a service journal can never be resumed as a campaign journal
// or vice versa).  Everything user-visible derives from it:
//
//   report   One text line per record, in journal order (render()).  A live
//            run's report, a killed-and-resumed run's report and an offline
//            replay of the same window are byte-identical because they are
//            all renderings of the same journal bytes.
//
//   resume   A restarted daemon reads the journal, re-queues every admitted
//            request without an outcome, rebuilds virtual time, breaker
//            state and the cost model, and continues as if never killed.
//
//   replay   `greengpud --replay` re-executes journaled outcomes from their
//            recorded (seed, device) and verifies the results match the
//            journal bit-for-bit (see core.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/journal.h"
#include "src/service/types.h"

namespace gg::service {

enum class RecordKind : std::uint64_t {
  kAdmit = 1,
  kShed = 2,
  kOutcome = 3,
  kStart = 4,
};

/// The executor claimed a request.  Journaled *before* execution so the
/// claim order — which in a live daemon depends on how admissions interleave
/// with the executor — is durable: a resumed daemon re-runs the claimed
/// request first instead of letting the rebuilt queue reorder history.
struct StartRecord {
  std::uint64_t seq{0};
  std::uint64_t device{0};
  /// Virtual service time at the claim (the request's vtime_before).
  double vtime{0.0};
};

/// A rejected (or evicted) submission.
struct ShedRecord {
  std::uint64_t seq{0};
  std::string workload;
  std::string policy;
  std::uint64_t priority{0};
  /// "queue-full", "deadline-unmeetable", "draining" or "evicted".
  std::string reason;
};

enum class OutcomeStatus : std::uint8_t { kOk = 0, kFailed = 1 };
enum class DeadlineVerdict : std::uint8_t { kNone = 0, kMet = 1, kViolated = 2 };

/// One executed request's scalar results — everything the report and the
/// replay verifier consume.
struct OutcomeRecord {
  std::uint64_t seq{0};
  std::uint64_t device{0};
  OutcomeStatus status{OutcomeStatus::kOk};
  double exec_time{0.0};
  double gpu_energy{0.0};
  double cpu_energy{0.0};
  bool verified{false};
  std::uint64_t fault_events{0};
  std::uint64_t watchdog_trips{0};
  /// Controller telemetry (PR-3 DecisionRecorder counters): frequency-scaler
  /// decisions taken and division moves (ratio changes) during the run.
  /// Journaled so the WATCH stream can be regenerated from the journal alone.
  std::uint64_t scaler_decisions{0};
  std::uint64_t division_moves{0};
  DeadlineVerdict deadline{DeadlineVerdict::kNone};
  /// Virtual service time after this outcome (== vtime before + exec_time
  /// for ok outcomes; failed outcomes do not advance it).
  double vtime_after{0.0};
};

/// One journal record, decoded.  Exactly one of the payload structs is
/// meaningful, selected by `kind`.
struct ServiceRecord {
  RecordKind kind{RecordKind::kAdmit};
  Request admit;
  ShedRecord shed;
  OutcomeRecord outcome;
  StartRecord start;
};

/// The report/replay text form of a record: "admit seq=... | shed seq=... |
/// outcome seq=...", one line, no trailing newline.  Fixed-width %.6f for
/// every double so the bytes are reproducible.
[[nodiscard]] std::string render(const ServiceRecord& record);

class ServiceJournal {
 public:
  /// Scan `path`, validating the header against `fingerprint` and dropping
  /// a torn or schema-mismatched tail in place.  Throws common::SnapshotError
  /// (with path and byte offset) on a missing/foreign journal.
  [[nodiscard]] static std::vector<ServiceRecord> read(const std::string& path,
                                                       std::uint64_t fingerprint);

  ServiceJournal(std::string path, std::uint64_t fingerprint, bool fresh);

  void admit(const Request& request);
  void shed(const ShedRecord& record);
  void outcome(const OutcomeRecord& record);
  void start(const StartRecord& record);

  [[nodiscard]] const std::string& path() const { return journal_.path(); }

 private:
  common::Journal journal_;
};

}  // namespace gg::service
