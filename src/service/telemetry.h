// Streaming telemetry for greengpud: the engine behind the WATCH verb.
//
// A WATCH subscriber receives the daemon's decision stream — admission
// verdicts, executor claims, outcomes with their controller counters
// (scaler decisions, division moves), and circuit-breaker transitions — as
// newline-framed text over the same Unix socket the request protocol uses.
// Two pieces make the stream robust by construction:
//
//   TelemetryFeed    The event stream is a *pure function of the journal*:
//                    every record folds into zero or more event payloads,
//                    and breaker transitions are derived by replaying the
//                    record through a replica breaker (breaker state is a
//                    pure function of the outcome sequence — see breaker.h).
//                    The live core and the offline generators fold the same
//                    records through identical feeds, so a `WATCH FROM <seq>`
//                    resume replays a byte-identical continuation of what a
//                    never-disconnected subscriber would have seen, and
//                    `greengpud --events` prints the same stream offline.
//
//   TelemetryHub     Fan-out with backpressure.  Each subscriber owns a
//                    bounded ring of pending frames; a slow consumer loses
//                    the *oldest* undelivered events, and every loss is
//                    accounted by an explicit `DROPPED <n>` frame in-stream —
//                    never silent.  Heartbeats cover idle streams, and a
//                    subscriber that stays unwritable for the stall budget
//                    is evicted so it can never wedge the daemon.
//
// Frame grammar (one frame per line, see docs/TELEMETRY.md):
//
//   EVENT <seq> <payload>   event seq is global, dense, starts at 1
//   DROPPED <n>             n events were dropped before the next EVENT
//   HEARTBEAT last=<seq>    stream alive; <seq> is the newest published seq
//
// The hub reads no clock: time is ticks delivered by the socket server's
// poll loop (wall-paced in the daemon, hand-cranked in tests), which keeps
// every eviction/heartbeat decision deterministic under test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/service/breaker.h"
#include "src/service/journal.h"
#include "src/service/types.h"

namespace gg::service {

/// Derives event payloads from service journal records.  Record events reuse
/// render() verbatim (an EVENT payload for an outcome *is* its report line);
/// breaker transitions are synthesized from the replica's state changes.
class TelemetryFeed {
 public:
  explicit TelemetryFeed(const ServiceConfig& config);

  /// Append the payloads derived from `record` to `out`, in stream order.
  void on_record(const ServiceRecord& record, std::vector<std::string>& out);

 private:
  /// Replays the record stream exactly like the live breaker consumes it
  /// (acquire() per start, on_result() per outcome), which is what makes the
  /// derived transition events reproducible from the journal alone.
  CircuitBreaker replica_;
};

/// The full event stream of a record sequence, in order.  Payload k carries
/// event seq k+1.
[[nodiscard]] std::vector<std::string> telemetry_events(
    const ServiceConfig& config, const std::vector<ServiceRecord>& records);

/// Fan-out hub: assigns global event sequence numbers and feeds any number
/// of bounded per-subscriber frame queues.  Single-threaded by contract —
/// the caller serializes access exactly like ServiceCore (the daemon holds
/// its core mutex, tests run single-threaded).
class TelemetryHub {
 public:
  explicit TelemetryHub(TelemetryConfig config);

  /// Broadcast one event payload.  O(subscribers); never blocks, never
  /// allocates beyond each subscriber's fixed ring.
  void publish(const std::string& payload);

  /// Set the stream position after a journal resume (events regenerated
  /// from the journal were "published" by a previous life).  Only legal
  /// before the first subscriber.
  void seed(std::uint64_t published);

  /// Newest published event seq (0 = none yet).
  [[nodiscard]] std::uint64_t published() const { return published_; }
  /// Events dropped across all subscribers, ever.
  [[nodiscard]] std::uint64_t dropped_total() const { return dropped_total_; }
  [[nodiscard]] std::size_t subscriber_count() const { return subs_.size(); }
  /// Subscribers evicted for exhausting the stall budget, ever.
  [[nodiscard]] std::uint64_t evicted_total() const { return evicted_total_; }

  /// Add a subscriber whose next frame is event `from_seq`.  `backlog`
  /// carries the journal-regenerated payloads for [from_seq, published()]
  /// (empty for a live-tail WATCH, where from_seq == published()+1); live
  /// events published after this call queue behind it seamlessly.  Returns
  /// the subscriber id, or 0 when the table is full.
  [[nodiscard]] std::uint64_t subscribe(std::uint64_t from_seq,
                                        std::vector<std::string> backlog);
  /// Remove a subscriber (idempotent; eviction and disconnect both land here).
  void unsubscribe(std::uint64_t id);

  /// Next frame for subscriber `id`, or nullopt when it has nothing to send.
  /// Delivery order per subscriber: backlog, then DROPPED accounting, then
  /// the live ring, then a heartbeat when idle long enough.
  [[nodiscard]] std::optional<std::string> next_frame(std::uint64_t id);

  /// The transport's per-tick verdict for `id`: false when frames are
  /// pending but the peer accepted no bytes this tick (a stall).
  void note_progress(std::uint64_t id, bool progressed);

  /// One server tick: advances heartbeat and stall clocks.  Returns the
  /// ids of subscribers that exhausted the stall budget — already removed
  /// from the hub; the caller closes their connections.
  [[nodiscard]] std::vector<std::uint64_t> tick();

 private:
  struct Entry {
    std::uint64_t seq{0};
    std::string payload;
  };

  struct Subscriber {
    /// Journal-regenerated catch-up payloads, drained before the ring.
    std::vector<std::string> backlog;
    std::size_t backlog_pos{0};
    std::uint64_t backlog_seq{0};  ///< seq of backlog[backlog_pos]
    /// Fixed-capacity ring of undelivered live events (oldest at head).
    std::vector<Entry> ring;
    std::size_t ring_head{0};
    std::size_t ring_size{0};
    /// Drops not yet surfaced as a DROPPED frame.
    std::uint64_t dropped_pending{0};
    std::uint64_t ticks_idle{0};
    std::uint64_t ticks_stalled{0};
    bool stalled_this_tick{false};
  };

  TelemetryConfig config_;
  std::uint64_t published_{0};
  std::uint64_t dropped_total_{0};
  std::uint64_t evicted_total_{0};
  std::uint64_t next_id_{1};
  std::map<std::uint64_t, Subscriber> subs_;
};

}  // namespace gg::service
