#include "src/service/socket_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "src/common/annotations.h"

namespace gg::service {

namespace {

void fill_addr(sockaddr_un& addr, const std::string& path) {
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
}

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

/// Read newline-terminated lines from `fd`, feed each through `handler`,
/// write each reply followed by '\n'.  Returns when the peer closes.
void serve_connection(int fd, const LineHandler& handler) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) return;
    // GG_BOUNDED(one connection's unterminated tail; lines are consumed as
    // soon as their newline arrives)
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string reply = handler(buffer.substr(start, nl - start)) + "\n";
      std::size_t sent = 0;
      while (sent < reply.size()) {
        const ssize_t w = ::write(fd, reply.data() + sent, reply.size() - sent);
        if (w <= 0) return;
        sent += static_cast<std::size_t>(w);
      }
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
}

}  // namespace

SocketServer::SocketServer(std::string path) : path_(std::move(path)) {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) fail("socket", path_);
  sockaddr_un addr;
  fill_addr(addr, path_);
  ::unlink(path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = err;
    fail("bind", path_);
  }
  if (::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = err;
    fail("listen", path_);
  }
}

SocketServer::~SocketServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(path_.c_str());
}

void SocketServer::serve(const LineHandler& handler,
                         const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal delivery; re-check stop
      fail("poll", path_);
    }
    if (ready == 0) continue;  // timeout tick: re-check stop
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      fail("accept", path_);
    }
    serve_connection(fd, handler);
    ::close(fd);
  }
}

std::string socket_request(const std::string& path, const std::string& lines) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail("socket", path);
  sockaddr_un addr;
  fill_addr(addr, path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    fail("connect", path);
  }
  std::string request = lines;
  if (request.empty() || request.back() != '\n') request += '\n';
  std::size_t expected = 0;
  for (const char c : request) expected += c == '\n' ? 1 : 0;
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t w = ::write(fd, request.data() + sent, request.size() - sent);
    if (w <= 0) {
      ::close(fd);
      fail("write", path);
    }
    sent += static_cast<std::size_t>(w);
  }
  ::shutdown(fd, SHUT_WR);
  std::string replies;
  char chunk[4096];
  std::size_t newlines = 0;
  while (newlines < expected) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    // GG_BOUNDED(one reply line per request line sent on this connection)
    replies.append(chunk, static_cast<std::size_t>(n));
    newlines = 0;
    for (const char c : replies) newlines += c == '\n' ? 1 : 0;
  }
  ::close(fd);
  return replies;
}

}  // namespace gg::service
