#include "src/service/socket_server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "src/common/annotations.h"
#include "src/sim/fault.h"

namespace gg::service {

namespace {

/// EINTR retries per syscall before deferring to the next poll tick.
constexpr int kEintrBudget = 8;
/// Per-connection buffer bound, both directions.  An input line that never
/// ends, or an output backlog the peer will not drain, stops here instead
/// of growing without bound; the telemetry hub's ring (not this buffer) is
/// the unit of backpressure accounting for streams, so the transport keeps
/// its slice small.
constexpr std::size_t kMaxBuffered = 64 * 1024;
constexpr int kPollTickMs = 50;

void fill_addr(sockaddr_un& addr, const std::string& path) {
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
}

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Write up to `size` bytes without ever blocking the caller.  Returns the
/// byte count accepted (0 = try again next tick: EAGAIN, a stalled-peer or
/// EINTR injection, or a real EINTR budget exhausted), or -1 when the peer
/// is gone (EPIPE, ECONNRESET, injected EPIPE, any other hard error).
/// MSG_NOSIGNAL keeps a dead peer from raising SIGPIPE even if the daemon's
/// global ignore is missing.
GG_NONBLOCK_IO ssize_t write_some(int fd, const char* data, std::size_t size,
                                  sim::SocketFaultInjector* faults) {
  std::size_t attempt = size;
  if (faults != nullptr) {
    std::size_t allowed = size;
    switch (faults->draw_write(size, allowed)) {
      case sim::SocketFault::kShortWrite:
        attempt = allowed;
        break;
      case sim::SocketFault::kEintr:
      case sim::SocketFault::kStall:
        return 0;  // accepted nothing this tick; caller re-polls
      case sim::SocketFault::kEpipe:
        return -1;
      default:
        break;
    }
  }
  for (int retry = 0; retry < kEintrBudget; ++retry) {
    const ssize_t n = ::send(fd, data, attempt, MSG_NOSIGNAL);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;  // EPIPE / ECONNRESET / anything else: peer is gone
  }
  return 0;
}

/// Read up to `size` bytes without blocking.  Returns bytes read (> 0),
/// 0 when nothing is available this tick (EAGAIN, EINTR), or -1 when the
/// connection ended (orderly EOF, injected disconnect, any hard error).
GG_NONBLOCK_IO ssize_t read_some(int fd, char* buf, std::size_t size,
                                 sim::SocketFaultInjector* faults) {
  std::size_t attempt = size;
  if (faults != nullptr) {
    std::size_t allowed = size;
    switch (faults->draw_read(size, allowed)) {
      case sim::SocketFault::kShortRead:
        attempt = allowed;
        break;
      case sim::SocketFault::kEintr:
        return 0;
      case sim::SocketFault::kDisconnect:
        return -1;
      default:
        break;
    }
  }
  for (int retry = 0; retry < kEintrBudget; ++retry) {
    const ssize_t n = ::recv(fd, buf, attempt, 0);
    if (n > 0) return n;
    if (n == 0) return -1;  // orderly EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
  return 0;
}

/// Blocking-client helper: write the whole buffer, retrying EINTR (bounded)
/// and partial writes.  Client-side only — the daemon never calls this.
GG_NONBLOCK_IO bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  int retries = 0;
  while (sent < size) {
    const ssize_t w = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      retries = 0;
      continue;
    }
    if (w < 0 && errno == EINTR && ++retries < kEintrBudget) continue;
    return false;
  }
  return true;
}

/// Blocking-client helper: one chunk read with bounded EINTR retry.
/// Returns bytes read, 0 on EOF, -1 on error.
GG_NONBLOCK_IO ssize_t read_chunk(int fd, char* buf, std::size_t size) {
  for (int retry = 0; retry < kEintrBudget; ++retry) {
    const ssize_t n = ::recv(fd, buf, size, 0);
    if (n >= 0) return n;
    if (errno != EINTR) return -1;
  }
  return -1;
}

[[nodiscard]] bool is_watch_line(const std::string& line) {
  return line == "WATCH" || line.rfind("WATCH ", 0) == 0;
}

/// One multiplexed connection.  `watch_id` > 0 marks a connection that
/// completed a WATCH handshake: its output is fed from the telemetry hub
/// and its input is drained only to detect disconnect.
struct Conn {
  int fd{-1};
  std::string in;   ///< unterminated tail of received bytes
  std::string out;  ///< reply/frame bytes not yet accepted by the peer
  bool read_closed{false};
  bool dead{false};
  std::uint64_t watch_id{0};
};

int connect_client(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail("socket", path);
  sockaddr_un addr;
  fill_addr(addr, path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    fail("connect", path);
  }
  return fd;
}

}  // namespace

SocketServer::SocketServer(std::string path) : path_(std::move(path)) {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) fail("socket", path_);
  sockaddr_un addr;
  fill_addr(addr, path_);
  ::unlink(path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = err;
    fail("bind", path_);
  }
  if (::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = err;
    fail("listen", path_);
  }
  set_nonblocking(listen_fd_);
}

SocketServer::~SocketServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(path_.c_str());
}

void SocketServer::serve(const LineHandler& handler,
                         const std::atomic<bool>& stop) {
  serve(handler, StreamHooks{}, stop);
}

void SocketServer::serve(const LineHandler& handler, const StreamHooks& hooks,
                         const std::atomic<bool>& stop) {
  const bool streaming = static_cast<bool>(hooks.subscribe);
  std::vector<Conn> conns;
  std::vector<pollfd> pfds;
  char chunk[4096];

  const auto drop = [&](Conn& conn) {
    if (conn.dead) return;
    if (conn.watch_id != 0 && hooks.unsubscribe) {
      hooks.unsubscribe(conn.watch_id);
    }
    ::close(conn.fd);
    conn.dead = true;
  };

  while (!stop.load(std::memory_order_acquire)) {
    pfds.clear();
    // GG_BOUNDED(one pollfd per live connection plus the listener)
    pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const Conn& conn : conns) {
      short events = 0;
      if (!conn.read_closed) events |= POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      // GG_BOUNDED(mirrors conns, itself bounded by accepted connections)
      pfds.push_back(pollfd{conn.fd, events, 0});
    }

    const int ready = ::poll(pfds.data(), pfds.size(), kPollTickMs);
    if (ready < 0 && errno != EINTR) fail("poll", path_);

    // Accept every pending connection; new conns join next tick's poll set.
    if (ready > 0 && (pfds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;  // EAGAIN / EINTR: done for this tick
        set_nonblocking(fd);
        Conn conn;
        conn.fd = fd;
        // GG_BOUNDED(one entry per live connection; dead ones reaped per tick)
        conns.push_back(std::move(conn));
      }
    }

    // Read phase: drain readable sockets, dispatch completed lines.
    for (std::size_t i = 0; i < conns.size(); ++i) {
      Conn& conn = conns[i];
      if (conn.dead || conn.read_closed) continue;
      const pollfd& pfd = pfds[i + 1];
      if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const ssize_t n = read_some(conn.fd, chunk, sizeof chunk, faults_);
      if (n < 0) {
        if (conn.watch_id != 0 || conn.out.empty()) {
          drop(conn);
        } else {
          conn.read_closed = true;  // flush pending replies, then close
        }
        continue;
      }
      if (n == 0) continue;
      if (conn.watch_id != 0) continue;  // stream conns: input is discarded
      // GG_BOUNDED(capped at kMaxBuffered just below)
      conn.in.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (;;) {
        const std::size_t nl = conn.in.find('\n', start);
        if (nl == std::string::npos) break;
        std::string line = conn.in.substr(start, nl - start);
        start = nl + 1;
        if (streaming && is_watch_line(line)) {
          std::string reply;
          const std::uint64_t id = hooks.subscribe(line, reply);
          // GG_BOUNDED(out is capped at kMaxBuffered per tick; overflow
          // drops the connection below)
          conn.out += reply + "\n";
          if (id != 0) {
            conn.watch_id = id;
            break;  // connection is now a one-way stream
          }
          continue;
        }
        // GG_BOUNDED(out is capped at kMaxBuffered per tick; overflow drops
        // the connection below)
        conn.out += handler(line) + "\n";
      }
      conn.in.erase(0, start);
      if (conn.watch_id != 0) conn.in.clear();
      if (conn.in.size() > kMaxBuffered || conn.out.size() > kMaxBuffered) {
        drop(conn);  // unterminated line or undrainable backlog: protocol abuse
      }
    }

    // Frame phase: top up each stream connection from the telemetry hub.
    if (streaming) {
      for (Conn& conn : conns) {
        if (conn.dead || conn.watch_id == 0) continue;
        while (conn.out.size() < kMaxBuffered) {
          const std::optional<std::string> frame =
              hooks.next_frame(conn.watch_id);
          if (!frame.has_value()) break;
          // GG_BOUNDED(loop exits at kMaxBuffered; undelivered frames stay
          // in the hub's fixed ring)
          conn.out += *frame + "\n";
        }
      }
    }

    // Write phase: push pending bytes, account stream progress.
    for (Conn& conn : conns) {
      if (conn.dead || conn.out.empty()) continue;
      const ssize_t n =
          write_some(conn.fd, conn.out.data(), conn.out.size(), faults_);
      if (n < 0) {
        drop(conn);  // EPIPE on a stream = slow consumer gone, not a crash
        continue;
      }
      if (n > 0) conn.out.erase(0, static_cast<std::size_t>(n));
      if (conn.watch_id != 0 && hooks.note_progress) {
        hooks.note_progress(conn.watch_id, n > 0);
      }
    }

    // Tick phase: heartbeat/stall clocks advance; evicted subscribers are
    // disconnected here (the hub already forgot them).
    if (streaming && hooks.tick) {
      for (const std::uint64_t id : hooks.tick()) {
        for (Conn& conn : conns) {
          if (!conn.dead && conn.watch_id == id) {
            conn.watch_id = 0;  // already removed from the hub
            drop(conn);
          }
        }
      }
    }

    // Reap phase.
    for (Conn& conn : conns) {
      if (!conn.dead && conn.read_closed && conn.out.empty()) drop(conn);
    }
    std::size_t live = 0;
    for (std::size_t i = 0; i < conns.size(); ++i) {
      if (!conns[i].dead) {
        if (live != i) conns[live] = std::move(conns[i]);
        ++live;
      }
    }
    conns.resize(live);
  }

  for (Conn& conn : conns) drop(conn);
}

std::string socket_request(const std::string& path, const std::string& lines) {
  const int fd = connect_client(path);
  std::string request = lines;
  if (request.empty() || request.back() != '\n') request += '\n';
  std::size_t expected = 0;
  for (const char c : request) expected += c == '\n' ? 1 : 0;
  if (!write_all(fd, request.data(), request.size())) {
    ::close(fd);
    fail("write", path);
  }
  ::shutdown(fd, SHUT_WR);
  std::string replies;
  char chunk[4096];
  std::size_t newlines = 0;
  while (newlines < expected) {
    const ssize_t n = read_chunk(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    // GG_BOUNDED(one reply line per request line sent on this connection)
    replies.append(chunk, static_cast<std::size_t>(n));
    newlines = 0;
    for (const char c : replies) newlines += c == '\n' ? 1 : 0;
  }
  ::close(fd);
  return replies;
}

std::size_t socket_watch(const std::string& path, const std::string& request,
                         int idle_timeout_ms,
                         const std::function<bool(const std::string&)>& on_frame) {
  const int fd = connect_client(path);
  std::string line = request;
  if (line.empty() || line.back() != '\n') line += '\n';
  if (!write_all(fd, line.data(), line.size())) {
    ::close(fd);
    fail("write", path);
  }
  std::size_t delivered = 0;
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, idle_timeout_ms);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) break;  // idle timeout or poll failure: stop watching
    const ssize_t n = read_chunk(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    // GG_BOUNDED(frames are consumed as soon as their newline arrives)
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      ++delivered;
      if (!on_frame(buffer.substr(start, nl - start))) {
        open = false;
        break;
      }
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
  ::close(fd);
  return delivered;
}

}  // namespace gg::service
