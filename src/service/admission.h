// Admission control: bounded queue, priority shedding, deadline budgeting.
//
// Every SUBMIT passes through here before it costs the executor anything.
// The controller enforces three things:
//
//   capacity   The queue is a common::BoundedQueue.  A submission that
//              finds it full either displaces the lowest-priority queued
//              request (when the arrival outranks it — the displaced
//              request is shed with reason "evicted") or is itself shed
//              with reason "queue-full".
//
//   deadlines  A request with a deadline is admitted only if its estimated
//              completion fits the budget: estimated wait = cost of the
//              in-flight request + costs of queued requests that will run
//              before it (priority >= its own) + its own cost.  Estimates
//              are the maximum observed simulated exec_time per
//              (workload, policy) — conservative, so an admitted
//              high-priority request does not miss its deadline because
//              admission was optimistic — with a configured default before
//              the first observation.
//
//   draining   After DRAIN no submission is admitted, full stop.
//
// All decisions are pure functions of (journal-derived) state and the
// submission sequence, so live, resumed and replayed runs shed identically.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "src/common/bounded_queue.h"
#include "src/common/units.h"
#include "src/service/types.h"

namespace gg::service {

class AdmissionController {
 public:
  struct Decision {
    bool admitted{false};
    /// Shed reason when not admitted ("queue-full", "deadline-unmeetable",
    /// "draining"); empty on admission.
    std::string reason;
    /// Lower-priority request displaced to make room (shed as "evicted").
    std::optional<Request> evicted;
  };

  AdmissionController(std::size_t capacity, double default_cost_estimate);

  /// Decide on `r`.  `inflight_cost` is the estimated remaining cost of the
  /// request currently executing (0 when idle); `draining` rejects
  /// everything.  On admission the request is queued.
  [[nodiscard]] Decision offer(Request r, Seconds inflight_cost,
                               bool draining);

  /// Re-queue an already-admitted request during resume (bypasses the
  /// admission checks it already passed).  Throws std::logic_error if the
  /// queue cannot hold it — impossible for a journal this controller wrote.
  void requeue(Request r);

  /// Highest-priority queued request, FIFO within a priority.
  [[nodiscard]] std::optional<Request> next();

  /// Record an observed per-request cost; estimates are max-so-far.
  void observe_cost(const std::string& workload, const std::string& policy,
                    Seconds exec_time);
  [[nodiscard]] Seconds estimate(const std::string& workload,
                                         const std::string& policy) const;

  [[nodiscard]] std::size_t depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t capacity() const { return queue_.capacity(); }

 private:
  common::BoundedQueue<Request> queue_;
  double default_cost_;
  /// Max observed simulated exec_time per (workload, policy).
  std::map<std::pair<std::string, std::string>, double> observed_costs_;
};

}  // namespace gg::service
