// Shared vocabulary of the greengpud service layer.
//
// greengpud promotes the one-shot experiment runner into an always-on
// daemon: clients submit (workload, policy) requests over a local socket,
// an executor runs them through the greengpu:: controllers on a pool of
// simulated devices, and every admission decision and outcome is journaled
// so the daemon's report is byte-reproducible across kills, restarts and
// offline replay.  This header holds the request/config/status types every
// service component shares; the state machines live in admission.h,
// breaker.h, journal.h and core.h.
//
// Time: the service never reads a wall clock.  Ordering and deadlines are
// accounted in *virtual service time* — the running sum of simulated
// exec_time over completed requests — which is a pure function of the
// journal and therefore identical in live, resumed and replayed runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/backoff.h"
#include "src/common/units.h"
#include "src/sim/fault.h"

namespace gg::service {

/// Numeric reply statuses of the line protocol, HTTP-flavored so operators
/// and scripts can pattern-match the first token of every reply.
enum class StatusCode : int {
  kOk = 200,        ///< query answered
  kAccepted = 202,  ///< request admitted and queued
  kBadRequest = 400,
  kNotFound = 404,
  kInternalError = 500,
  kShed = 503,  ///< overload / draining / deadline-unmeetable rejection
};

/// One submitted unit of work.  `seq` is assigned at submission and is the
/// request's identity everywhere (journal, STATUS, report lines).
struct Request {
  std::uint64_t seq{0};
  std::string workload;
  std::string policy;
  /// Higher runs first; ties execute in submission order.
  std::uint64_t priority{0};
  /// Virtual-time budget from admission to completion; 0 = no deadline.
  Seconds deadline{0.0};
  /// Per-request iteration override (0 = the service default).
  std::uint64_t iterations{0};
  /// Fault-RNG seed forked from the service seed by `seq` at admission, so
  /// a re-executed request (resume, replay) reproduces its run bit-for-bit.
  std::uint64_t seed{0};
  /// Virtual service time when the request was admitted.
  Seconds vtime_admit{0.0};
};

/// Streaming-telemetry (WATCH) knobs.  All host-side: none of these affect
/// admission decisions or results, so they are excluded from the journal
/// fingerprint — a daemon may resume a journal under a different streaming
/// configuration.  Ticks are socket-server poll ticks (~50 ms wall each in
/// the daemon, manual in tests), not simulated time: the stream paces
/// against real subscribers, but nothing it carries depends on the pacing.
struct TelemetryConfig {
  /// Per-subscriber pending-frame ring capacity.  Overflow drops the oldest
  /// undelivered event and accounts it in the next DROPPED frame.
  std::size_t ring_capacity{256};
  /// Subscriber-table bound; WATCH beyond it is refused with 503.
  std::size_t max_subscribers{16};
  /// Ticks with nothing delivered before a HEARTBEAT frame is emitted.
  std::uint64_t heartbeat_ticks{40};
  /// Consecutive ticks a subscriber may sit with pending frames and an
  /// unwritable socket before it is evicted.
  std::uint64_t stall_budget_ticks{400};

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Per-device circuit-breaker thresholds.
struct BreakerConfig {
  /// Consecutive failed requests on one device before it is quarantined.
  int failure_threshold{3};
  /// Completions elsewhere before a quarantined device gets a probe.
  int probe_after{4};

  void validate() const;
};

/// Everything that configures a greengpud instance.  The journal header
/// fingerprints the result-affecting subset, so a journal can only be
/// resumed or replayed under the configuration that wrote it.
struct ServiceConfig {
  /// Simulated device lanes requests are assigned to.
  std::size_t devices{2};
  /// Admission queue capacity; submissions beyond it shed lowest-priority
  /// first.
  std::size_t queue_capacity{8};
  /// Root seed; each request's fault stream is forked from it by seq.
  std::uint64_t seed{0x5EEDDAE0ULL};
  /// Run requests with the hardened controllers (retry/reroute/watchdog).
  bool hardened{false};
  /// Default per-request iteration cap (0 = workload default).
  std::uint64_t max_iterations{0};
  /// Admission-time cost estimate (simulated seconds) for a
  /// (workload, policy) pair with no observed completions yet.
  double default_cost_estimate{60.0};
  /// Faults injected on the faulty devices (clean devices run fault-free).
  sim::FaultConfig faults{};
  /// Devices the fault config applies to (the breaker's prey).
  std::vector<std::size_t> faulty_devices;
  BreakerConfig breaker{};
  /// Executor crash supervision: restart budget and backoff schedule.
  int max_restarts{8};
  common::BackoffConfig backoff{};
  /// WATCH streaming knobs (host-side; not fingerprinted).
  TelemetryConfig telemetry{};

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;

  /// Journal-header fingerprint over every field that affects admission
  /// decisions or results.  Host-side knobs (backoff, restart budget) are
  /// excluded so a resumed daemon may supervise differently.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Journal-derived counters reported by STATS (and asserted by tests).
struct ServiceStats {
  std::uint64_t submitted{0};
  std::uint64_t admitted{0};
  std::uint64_t shed{0};     ///< rejected at submission (full / deadline / drain)
  std::uint64_t evicted{0};  ///< admitted, then displaced by higher priority
  std::uint64_t completed{0};
  std::uint64_t failed{0};
  std::uint64_t restarts{0};  ///< executor crashes survived (not journaled)
};

}  // namespace gg::service
