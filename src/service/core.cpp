#include "src/service/core.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/killpoint.h"
#include "src/common/snapshot.h"
#include "src/greengpu/campaign.h"
#include "src/workloads/registry.h"

namespace gg::service {

namespace {

/// The CLI's policy vocabulary, minus the parameterized ones that need extra
/// knobs (static-pair levels, division ratios) — a service request is just a
/// name.  Throws std::invalid_argument on an unknown name.
greengpu::Policy policy_by_name(const std::string& name, bool hardened) {
  greengpu::GreenGpuParams params;
  params.hardening.enabled = hardened;
  greengpu::Policy policy;
  if (name == "best-performance" || name == "baseline") {
    policy = greengpu::Policy::best_performance();
    policy.params = params;
  } else if (name == "frequency-scaling" || name == "scaling") {
    policy = greengpu::Policy::scaling_only(params);
  } else if (name == "division") {
    policy = greengpu::Policy::division_only(params);
  } else if (name == "greengpu") {
    policy = greengpu::Policy::green_gpu(params);
  } else {
    throw std::invalid_argument("unknown policy: " + name);
  }
  return policy;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  // GG_BOUNDED(one token per word of a single protocol line)
  while (in >> token) tokens.push_back(token);
  return tokens;
}

/// Parse "key=value" with a u64 value; throws invalid_argument on garbage.
std::uint64_t parse_u64(const std::string& token, const std::string& key) {
  std::size_t pos = 0;
  const std::string value = token.substr(key.size() + 1);
  const std::uint64_t parsed = std::stoull(value, &pos);
  if (pos != value.size()) throw std::invalid_argument("bad " + key);
  return parsed;
}

double parse_f64(const std::string& token, const std::string& key) {
  std::size_t pos = 0;
  const std::string value = token.substr(key.size() + 1);
  const double parsed = std::stod(value, &pos);
  if (pos != value.size() || !(parsed >= 0.0)) {
    throw std::invalid_argument("bad " + key);
  }
  return parsed;
}

bool has_key(const std::string& token, const std::string& key) {
  return token.size() > key.size() + 1 && token.compare(0, key.size(), key) == 0 &&
         token[key.size()] == '=';
}

}  // namespace

ServiceCore::ServiceCore(ServiceConfig config, std::string journal_path,
                         bool resume)
    : config_(std::move(config)),
      journal_(std::move(journal_path), config_.fingerprint(), /*fresh=*/!resume),
      admission_(config_.queue_capacity, config_.default_cost_estimate),
      breaker_(config_.devices, config_.breaker),
      feed_(config_),
      hub_(config_.telemetry) {
  config_.validate();
  if (resume) resume_from_journal();
}

void ServiceCore::publish_record(const ServiceRecord& record) {
  ++journal_records_;
  scratch_events_.clear();
  feed_.on_record(record, scratch_events_);
  for (const std::string& payload : scratch_events_) hub_.publish(payload);
}

void ServiceCore::resume_from_journal() {
  // Replaying the journal in order reconstructs every piece of state the
  // uninterrupted daemon would hold: the pending set (admits minus outcomes
  // minus evictions), virtual time, breaker state, the cost model and the
  // counters.  Requests re-enter the queue in seq order, which is exactly
  // the priority-then-FIFO order they would drain in anyway.
  const auto records = ServiceJournal::read(journal_.path(), config_.fingerprint());
  // The telemetry stream is a pure function of the journal, so replaying the
  // records through the (fresh) feed lands its replica breaker and the hub's
  // stream position exactly where the dying daemon left them — a WATCH FROM
  // issued after resume continues the old stream byte-identically.
  std::uint64_t seeded = 0;
  for (const auto& record : records) {
    scratch_events_.clear();
    feed_.on_record(record, scratch_events_);
    seeded += scratch_events_.size();
  }
  hub_.seed(seeded);
  journal_records_ = records.size();
  std::map<std::uint64_t, Request> pending;
  // The last start record without a matching outcome is the claim the dying
  // daemon never finished; it must run first, not re-enter the queue.
  std::optional<StartRecord> claimed;
  for (const auto& record : records) {
    switch (record.kind) {
      case RecordKind::kStart:
        claimed = record.start;
        break;
      case RecordKind::kAdmit: {
        const Request& r = record.admit;
        pending[r.seq] = r;
        states_[r.seq] = "queued";
        ++stats_.submitted;
        ++stats_.admitted;
        next_seq_ = std::max(next_seq_, r.seq + 1);
        break;
      }
      case RecordKind::kShed: {
        const ShedRecord& s = record.shed;
        if (s.reason == "evicted") {
          pending.erase(s.seq);
          ++stats_.evicted;
          states_[s.seq] = "evicted";
        } else {
          ++stats_.submitted;
          ++stats_.shed;
          states_[s.seq] = "shed:" + s.reason;
        }
        next_seq_ = std::max(next_seq_, s.seq + 1);
        break;
      }
      case RecordKind::kOutcome: {
        const OutcomeRecord& o = record.outcome;
        auto it = pending.find(o.seq);
        if (it != pending.end()) {
          if (o.status == OutcomeStatus::kOk) {
            admission_.observe_cost(it->second.workload, it->second.policy,
                                    Seconds{o.exec_time});
          }
          pending.erase(it);
        }
        if (claimed && claimed->seq == o.seq) claimed.reset();
        vtime_ = Seconds{o.vtime_after};
        breaker_.on_result(o.device, o.status == OutcomeStatus::kOk);
        if (o.status == OutcomeStatus::kOk) {
          ++stats_.completed;
          states_[o.seq] = "ok";
        } else {
          ++stats_.failed;
          states_[o.seq] = "failed";
        }
        break;
      }
    }
  }
  if (claimed) {
    const auto it = pending.find(claimed->seq);
    if (it != pending.end()) {
      // Re-issue the unfinished claim.  acquire() on the rebuilt breaker is
      // deterministic, so it reproduces both the device choice and its
      // side-effect (an open device turning half-open for its probe); the
      // journaled device cross-checks that the rebuild really converged.
      const std::size_t device = breaker_.acquire();
      if (device != static_cast<std::size_t>(claimed->device)) {
        throw common::SnapshotError(
            journal_.path() + ": resumed breaker picked device " +
            std::to_string(device) + " but the journaled claim of seq " +
            std::to_string(claimed->seq) + " ran on device " +
            std::to_string(claimed->device));
      }
      Job job;
      job.request = it->second;
      job.device = device;
      job.vtime_before = Seconds{claimed->vtime};
      states_[job.request.seq] = "running";
      inflight_ = job;
      pending.erase(it);
    }
  }
  for (auto& [seq, request] : pending) {
    (void)seq;
    admission_.requeue(std::move(request));
  }
}

std::string ServiceCore::handle_line(const std::string& line) {
  const auto tokens = tokenize(line);
  if (tokens.empty()) return "400 empty request";
  const std::string& verb = tokens[0];
  if (verb == "PING") return "200 pong";
  if (verb == "SUBMIT") return handle_submit(tokens);
  if (verb == "STATUS") {
    if (tokens.size() != 2) return "400 usage: STATUS <seq>";
    std::uint64_t seq = 0;
    try {
      seq = std::stoull(tokens[1]);
    } catch (const std::exception&) {
      return "400 bad seq";
    }
    const auto it = states_.find(seq);
    if (it == states_.end()) return "404 unknown-seq " + tokens[1];
    return "200 status seq=" + tokens[1] + " state=" + it->second;
  }
  if (verb == "STATS") {
    std::ostringstream out;
    out << "200 stats submitted=" << stats_.submitted
        << " admitted=" << stats_.admitted << " shed=" << stats_.shed
        << " evicted=" << stats_.evicted << " completed=" << stats_.completed
        << " failed=" << stats_.failed << " restarts=" << stats_.restarts
        << " queued=" << admission_.depth()
        << " inflight=" << (inflight_ ? 1 : 0) << " vtime=" << vtime_.get()
        << " paused=" << (paused_ ? 1 : 0)
        << " draining=" << (draining_ ? 1 : 0)
        << " journal_records=" << journal_records_
        << " telemetry_seq=" << hub_.published()
        << " subscribers=" << hub_.subscriber_count()
        << " telemetry_dropped=" << hub_.dropped_total()
        << " telemetry_evicted=" << hub_.evicted_total();
    return out.str();
  }
  if (verb == "HEALTH") {
    std::string out = "200 health";
    for (std::size_t d = 0; d < breaker_.device_count(); ++d) {
      out += " device" + std::to_string(d) + "=" +
             CircuitBreaker::to_string(breaker_.state(d));
    }
    // Progress sequence numbers: smoke tests poll these instead of sleeping.
    out += " journal_records=" + std::to_string(journal_records_) +
           " telemetry_seq=" + std::to_string(hub_.published());
    return out;
  }
  if (verb == "WATCH") {
    // WATCH only means something on a connection the transport can flip to
    // a one-way stream; the request/reply path cannot, so refuse here.
    return "400 watch requires a streaming connection";
  }
  if (verb == "PAUSE") {
    paused_ = true;
    return "200 paused";
  }
  if (verb == "RESUME") {
    paused_ = false;
    return "200 resumed";
  }
  if (verb == "DRAIN") {
    draining_ = true;
    return "200 draining";
  }
  return "400 unknown verb " + verb;
}

std::string ServiceCore::handle_submit(const std::vector<std::string>& tokens) {
  if (tokens.size() < 3) {
    return "400 usage: SUBMIT <workload> <policy> [priority=N] [deadline=S] [iters=N]";
  }
  Request request;
  request.workload = tokens[1];
  request.policy = tokens[2];
  try {
    // Reject unknown names before they cost a seq or a journal record.
    (void)workloads::make_workload(request.workload);
    (void)policy_by_name(request.policy, config_.hardened);
    for (std::size_t i = 3; i < tokens.size(); ++i) {
      const std::string& t = tokens[i];
      if (has_key(t, "priority")) {
        request.priority = parse_u64(t, "priority");
      } else if (has_key(t, "deadline")) {
        request.deadline = Seconds{parse_f64(t, "deadline")};
      } else if (has_key(t, "iters")) {
        request.iterations = parse_u64(t, "iters");
      } else {
        return "400 unknown option " + t;
      }
    }
  } catch (const std::exception& e) {
    return "400 " + std::string(e.what());
  }

  ++stats_.submitted;
  request.seq = next_seq_++;
  // Fork the fault stream by seq the same way campaigns fork per-cell seeds,
  // so re-executing this request (resume, replay) reproduces it exactly.
  request.seed = greengpu::campaign_cell_seed(config_.seed, request.seq);
  request.vtime_admit = vtime_;

  auto decision = admission_.offer(request, inflight_cost(), draining_);
  ServiceRecord rec;
  if (!decision.admitted) {
    ++stats_.shed;
    states_[request.seq] = "shed:" + decision.reason;
    rec.kind = RecordKind::kShed;
    rec.shed = {request.seq, request.workload, request.policy,
                request.priority, decision.reason};
    journal_.shed(rec.shed);
    publish_record(rec);
    return "503 shed seq=" + std::to_string(request.seq) +
           " reason=" + decision.reason;
  }
  if (decision.evicted) {
    ++stats_.evicted;
    states_[decision.evicted->seq] = "evicted";
    rec.kind = RecordKind::kShed;
    rec.shed = {decision.evicted->seq, decision.evicted->workload,
                decision.evicted->policy, decision.evicted->priority,
                "evicted"};
    journal_.shed(rec.shed);
    publish_record(rec);
  }
  ++stats_.admitted;
  states_[request.seq] = "queued";
  journal_.admit(request);
  rec.kind = RecordKind::kAdmit;
  rec.admit = request;
  publish_record(rec);
  // Admission is journaled but the client reply is not yet sent: a daemon
  // killed here still owns the request after --resume.
  common::killpoint(common::KillPoint::kServicePostAdmit);
  return "202 accepted seq=" + std::to_string(request.seq);
}

std::uint64_t ServiceCore::watch(const std::string& line, std::string& reply) {
  const auto tokens = tokenize(line);
  std::uint64_t from = hub_.published() + 1;  // live tail by default
  bool resume_cursor = false;
  if (tokens.size() == 3 && tokens[1] == "FROM") {
    try {
      from = std::stoull(tokens[2]);
    } catch (const std::exception&) {
      reply = "400 bad cursor " + tokens[2];
      return 0;
    }
    if (from == 0) {
      reply = "400 bad cursor 0 (event seqs start at 1)";
      return 0;
    }
    resume_cursor = true;
  } else if (tokens.size() != 1) {
    reply = "400 usage: WATCH [FROM <seq>]";
    return 0;
  }
  if (from > hub_.published() + 1) {
    reply = "400 cursor " + std::to_string(from) + " beyond stream (last=" +
            std::to_string(hub_.published()) + ")";
    return 0;
  }
  std::vector<std::string> backlog;
  if (resume_cursor && from <= hub_.published()) {
    // Regenerate [from, now] from the journal.  The caller holds the core
    // lock, so the journal cannot grow between this read and subscribe() —
    // the backlog and the live ring splice gaplessly.
    const auto records =
        ServiceJournal::read(journal_.path(), config_.fingerprint());
    std::vector<std::string> events = telemetry_events(config_, records);
    if (events.size() != hub_.published()) {
      reply = "500 telemetry desync journal=" + std::to_string(events.size()) +
              " live=" + std::to_string(hub_.published());
      return 0;
    }
    backlog.assign(std::make_move_iterator(events.begin() + (from - 1)),
                   std::make_move_iterator(events.end()));
  }
  const std::uint64_t id = hub_.subscribe(from, std::move(backlog));
  if (id == 0) {
    reply = "503 watchers-full max=" +
            std::to_string(config_.telemetry.max_subscribers);
    return 0;
  }
  reply = "200 watching from=" + std::to_string(from) +
          " last=" + std::to_string(hub_.published());
  return id;
}

Seconds ServiceCore::inflight_cost() const {
  if (!inflight_) return Seconds{0.0};
  return admission_.estimate(inflight_->request.workload,
                             inflight_->request.policy);
}

std::optional<ServiceCore::Job> ServiceCore::take_next() {
  // Claiming is idempotent: an already-claimed job is handed out again, not
  // skipped.  The executor retries it after a supervised crash, and a
  // resumed daemon re-runs the claim it rebuilt from the journal's start
  // record instead of letting the re-queued backlog reorder history.
  if (inflight_) return inflight_;
  if (paused_) return std::nullopt;
  auto request = admission_.next();
  if (!request) return std::nullopt;
  Job job;
  job.request = std::move(*request);
  job.device = breaker_.acquire();
  job.vtime_before = vtime_;
  states_[job.request.seq] = "running";
  inflight_ = job;
  ServiceRecord rec;
  rec.kind = RecordKind::kStart;
  rec.start = {job.request.seq, job.device, job.vtime_before.get()};
  journal_.start(rec.start);
  publish_record(rec);
  return job;
}

OutcomeRecord ServiceCore::run_job(const ServiceConfig& config,
                                   const Request& request, std::size_t device,
                                   Seconds vtime_before) {
  greengpu::RunOptions options;
  options.verify = true;
  options.record.mode = greengpu::RecordMode::kCounters;
  options.max_iterations = request.iterations != 0
                               ? static_cast<std::size_t>(request.iterations)
                               : static_cast<std::size_t>(config.max_iterations);
  // Faults exist on the faulty devices only; a clean device runs the exact
  // fault-free simulation.  The per-request seed makes the faulty stream a
  // pure function of (service seed, seq) — independent of scheduling.
  const bool faulty =
      std::find(config.faulty_devices.begin(), config.faulty_devices.end(),
                device) != config.faulty_devices.end();
  if (faulty) {
    options.faults = config.faults;
    options.faults.seed = request.seed;
  }
  const greengpu::Policy policy =
      policy_by_name(request.policy, config.hardened);

  OutcomeRecord out;
  out.seq = request.seq;
  out.device = device;
  try {
    const greengpu::ExperimentResult result =
        greengpu::run_experiment(request.workload, policy, options);
    out.status = OutcomeStatus::kOk;
    out.exec_time = result.exec_time.get();
    out.gpu_energy = result.gpu_energy.get();
    out.cpu_energy = result.cpu_energy.get();
    out.verified = result.verified;
    out.fault_events = result.fault_event_count;
    out.watchdog_trips = result.watchdog_trips;
    out.scaler_decisions = result.scaler_decision_count;
    out.division_moves = result.division_moves;
    out.vtime_after = vtime_before.get() + out.exec_time;
  } catch (const greengpu::ExperimentAborted&) {
    // DNF: the platform killed the run (un-hardened policy under faults).
    // Failed work burns no virtual service time — the simulated cluster
    // discards it — but it does count against the device's breaker.
    out.status = OutcomeStatus::kFailed;
    out.vtime_after = vtime_before.get();
  }
  if (request.deadline.get() > 0.0) {
    const double spent = out.vtime_after - request.vtime_admit.get();
    out.deadline = (out.status == OutcomeStatus::kOk &&
                    spent <= request.deadline.get())
                       ? DeadlineVerdict::kMet
                       : DeadlineVerdict::kViolated;
  }
  return out;
}

void ServiceCore::complete(const Job& job, const OutcomeRecord& outcome) {
  // Executed but not yet journaled: a daemon killed here re-executes the
  // request after --resume and, the run being deterministic, journals the
  // identical outcome.
  common::killpoint(common::KillPoint::kServicePreResult);
  journal_.outcome(outcome);
  ServiceRecord rec;
  rec.kind = RecordKind::kOutcome;
  rec.outcome = outcome;
  publish_record(rec);
  vtime_ = Seconds{outcome.vtime_after};
  if (outcome.status == OutcomeStatus::kOk) {
    admission_.observe_cost(job.request.workload, job.request.policy,
                            Seconds{outcome.exec_time});
    ++stats_.completed;
    states_[outcome.seq] = "ok";
  } else {
    ++stats_.failed;
    states_[outcome.seq] = "failed";
  }
  breaker_.on_result(job.device, outcome.status == OutcomeStatus::kOk);
  inflight_.reset();
}

bool ServiceCore::step() {
  // A crash in run_job()/complete() unwinds with inflight_ still set, so the
  // next step() re-executes the same job — the in-process restart model the
  // kill-point tests drive.
  std::optional<Job> job = inflight_;
  if (!job) job = take_next();
  if (!job) return false;
  const OutcomeRecord outcome =
      run_job(config_, job->request, job->device, job->vtime_before);
  complete(*job, outcome);
  return true;
}

bool ServiceCore::drained() const {
  return draining_ && admission_.depth() == 0 && !inflight_;
}

void ServiceCore::write_report(const std::string& report_path) const {
  const auto records = ServiceJournal::read(journal_.path(), config_.fingerprint());
  // GG_LINT_ALLOW(checkpoint-write): the report is derived data, regenerated
  // from the journal on demand; losing a torn report costs nothing.
  std::ofstream out(report_path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write report: " + report_path);
  for (const auto& record : records) out << render(record) << '\n';
}

bool ServiceCore::replay_window(const ServiceConfig& config,
                                const std::string& journal_path, std::size_t lo,
                                std::size_t hi, std::string& out,
                                std::string& error) {
  out.clear();
  error.clear();
  std::vector<ServiceRecord> records;
  try {
    records = ServiceJournal::read(journal_path, config.fingerprint());
  } catch (const common::SnapshotError& e) {
    error = e.what();
    return false;
  }
  if (records.empty()) {
    error = "journal has no records";
    return false;
  }
  if (lo > hi || hi >= records.size()) {
    error = "window " + std::to_string(lo) + ":" + std::to_string(hi) +
            " out of range (journal has " + std::to_string(records.size()) +
            " records)";
    return false;
  }
  // Admits are indexed by seq so an outcome inside the window can recover
  // its request even when the admit precedes the window.
  std::map<std::uint64_t, Request> admits;
  for (const auto& record : records) {
    if (record.kind == RecordKind::kAdmit) admits[record.admit.seq] = record.admit;
  }
  for (std::size_t k = lo; k <= hi; ++k) {
    const ServiceRecord& record = records[k];
    if (record.kind == RecordKind::kOutcome) {
      const OutcomeRecord& journaled = record.outcome;
      const auto it = admits.find(journaled.seq);
      if (it == admits.end()) {
        error = "record " + std::to_string(k) + ": outcome seq=" +
                std::to_string(journaled.seq) + " has no admit record";
        return false;
      }
      // vtime_before is recoverable from the journaled outcome itself: an ok
      // outcome advanced vtime by exec_time, a failed one did not.
      const double vtime_before =
          journaled.status == OutcomeStatus::kOk
              ? journaled.vtime_after - journaled.exec_time
              : journaled.vtime_after;
      const OutcomeRecord replayed =
          run_job(config, it->second, journaled.device,
                  Seconds{vtime_before});
      const char* field = nullptr;
      if (replayed.status != journaled.status) field = "status";
      else if (replayed.exec_time != journaled.exec_time) field = "exec_time";
      else if (replayed.gpu_energy != journaled.gpu_energy) field = "gpu_energy";
      else if (replayed.cpu_energy != journaled.cpu_energy) field = "cpu_energy";
      else if (replayed.verified != journaled.verified) field = "verified";
      else if (replayed.fault_events != journaled.fault_events) field = "fault_events";
      else if (replayed.watchdog_trips != journaled.watchdog_trips) field = "watchdog_trips";
      else if (replayed.scaler_decisions != journaled.scaler_decisions) field = "scaler_decisions";
      else if (replayed.division_moves != journaled.division_moves) field = "division_moves";
      else if (replayed.deadline != journaled.deadline) field = "deadline";
      else if (replayed.vtime_after != journaled.vtime_after) field = "vtime_after";
      if (field != nullptr) {
        error = "record " + std::to_string(k) + ": replay diverged from the "
                "journal at field '" + std::string(field) + "' (seq=" +
                std::to_string(journaled.seq) + ")";
        return false;
      }
    }
    out += render(record);
    out += '\n';
  }
  return true;
}

bool ServiceCore::events_window(const ServiceConfig& config,
                                const std::string& journal_path,
                                std::uint64_t from_seq, std::string& out,
                                std::string& error) {
  out.clear();
  error.clear();
  std::vector<ServiceRecord> records;
  try {
    records = ServiceJournal::read(journal_path, config.fingerprint());
  } catch (const common::SnapshotError& e) {
    error = e.what();
    return false;
  }
  const std::vector<std::string> events = telemetry_events(config, records);
  if (from_seq == 0) from_seq = 1;
  if (from_seq > events.size() + 1) {
    error = "cursor " + std::to_string(from_seq) + " beyond stream (last=" +
            std::to_string(events.size()) + ")";
    return false;
  }
  for (std::uint64_t seq = from_seq; seq <= events.size(); ++seq) {
    out += "EVENT " + std::to_string(seq) + " " + events[seq - 1] + "\n";
  }
  return true;
}

}  // namespace gg::service
