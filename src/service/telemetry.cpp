#include "src/service/telemetry.h"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "src/common/annotations.h"

namespace gg::service {

namespace {

std::string breaker_event(std::size_t device, const char* transition,
                          CircuitBreaker::State state,
                          std::uint64_t completions) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "breaker device=%llu transition=%s state=%s completions=%llu",
                static_cast<unsigned long long>(device), transition,
                CircuitBreaker::to_string(state).c_str(),
                static_cast<unsigned long long>(completions));
  return std::string(buf);
}

const char* transition_word(CircuitBreaker::Event event) {
  switch (event) {
    case CircuitBreaker::Event::kOpened: return "opened";
    case CircuitBreaker::Event::kClosed: return "closed";
    case CircuitBreaker::Event::kReopened: return "reopened";
    case CircuitBreaker::Event::kNone: break;
  }
  return "none";
}

}  // namespace

TelemetryFeed::TelemetryFeed(const ServiceConfig& config)
    : replica_(config.devices, config.breaker) {}

void TelemetryFeed::on_record(const ServiceRecord& record,
                              std::vector<std::string>& out) {
  // GG_BOUNDED(at most two payloads per record; caller drains out each time)
  out.push_back(render(record));
  switch (record.kind) {
    case RecordKind::kStart: {
      // Mirror the live claim: acquire() is the call that flips a probe-due
      // open device to half-open, so replaying it reproduces probe events.
      const std::size_t device = replica_.acquire();
      if (replica_.state(device) == CircuitBreaker::State::kHalfOpen) {
        // GG_BOUNDED(at most two payloads per journal record)
        out.push_back(breaker_event(device, "probing",
                                    CircuitBreaker::State::kHalfOpen,
                                    replica_.completions()));
      }
      break;
    }
    case RecordKind::kOutcome: {
      const OutcomeRecord& o = record.outcome;
      const auto device = static_cast<std::size_t>(o.device);
      const CircuitBreaker::Event event =
          replica_.on_result(device, o.status == OutcomeStatus::kOk);
      if (event != CircuitBreaker::Event::kNone) {
        // GG_BOUNDED(at most two payloads per journal record)
        out.push_back(breaker_event(device, transition_word(event),
                                    replica_.state(device),
                                    replica_.completions()));
      }
      break;
    }
    case RecordKind::kAdmit:
    case RecordKind::kShed:
      break;
  }
}

std::vector<std::string> telemetry_events(
    const ServiceConfig& config, const std::vector<ServiceRecord>& records) {
  TelemetryFeed feed(config);
  std::vector<std::string> out;
  // GG_BOUNDED(at most two payloads per record of one already-read journal)
  out.reserve(records.size());
  for (const auto& record : records) feed.on_record(record, out);
  return out;
}

TelemetryHub::TelemetryHub(TelemetryConfig config) : config_(config) {
  config_.validate();
}

void TelemetryHub::publish(const std::string& payload) {
  ++published_;
  const std::size_t cap = config_.ring_capacity;
  for (auto& [id, sub] : subs_) {
    (void)id;
    if (sub.ring_size < cap) {
      Entry& slot = sub.ring[(sub.ring_head + sub.ring_size) % cap];
      slot.seq = published_;
      slot.payload = payload;
      ++sub.ring_size;
    } else {
      // Drop the oldest undelivered event: the head slot is overwritten and
      // the loss is surfaced as a DROPPED frame before the next delivery.
      sub.ring[sub.ring_head].seq = published_;
      sub.ring[sub.ring_head].payload = payload;
      sub.ring_head = (sub.ring_head + 1) % cap;
      ++sub.dropped_pending;
      ++dropped_total_;
    }
  }
}

void TelemetryHub::seed(std::uint64_t published) {
  if (!subs_.empty()) {
    throw std::logic_error("TelemetryHub: seed() with live subscribers");
  }
  published_ = published;
}

std::uint64_t TelemetryHub::subscribe(std::uint64_t from_seq,
                                      std::vector<std::string> backlog) {
  if (subs_.size() >= config_.max_subscribers) return 0;
  const std::uint64_t id = next_id_++;
  Subscriber sub;
  sub.backlog = std::move(backlog);
  sub.backlog_seq = from_seq;
  // GG_BOUNDED(fixed ring storage of exactly ring_capacity slots)
  sub.ring.resize(config_.ring_capacity);
  // GG_BOUNDED(table capped by TelemetryConfig::max_subscribers, see above)
  subs_.emplace(id, std::move(sub));
  return id;
}

void TelemetryHub::unsubscribe(std::uint64_t id) { subs_.erase(id); }

std::optional<std::string> TelemetryHub::next_frame(std::uint64_t id) {
  const auto it = subs_.find(id);
  if (it == subs_.end()) return std::nullopt;
  Subscriber& sub = it->second;
  if (sub.backlog_pos < sub.backlog.size()) {
    std::string frame = "EVENT " + std::to_string(sub.backlog_seq) + " " +
                        sub.backlog[sub.backlog_pos];
    ++sub.backlog_pos;
    ++sub.backlog_seq;
    sub.ticks_idle = 0;
    return frame;
  }
  if (sub.dropped_pending > 0) {
    std::string frame = "DROPPED " + std::to_string(sub.dropped_pending);
    sub.dropped_pending = 0;
    sub.ticks_idle = 0;
    return frame;
  }
  if (sub.ring_size > 0) {
    Entry& head = sub.ring[sub.ring_head];
    std::string frame =
        "EVENT " + std::to_string(head.seq) + " " + head.payload;
    head.payload.clear();
    sub.ring_head = (sub.ring_head + 1) % config_.ring_capacity;
    --sub.ring_size;
    sub.ticks_idle = 0;
    return frame;
  }
  if (sub.ticks_idle >= config_.heartbeat_ticks) {
    sub.ticks_idle = 0;
    return "HEARTBEAT last=" + std::to_string(published_);
  }
  return std::nullopt;
}

void TelemetryHub::note_progress(std::uint64_t id, bool progressed) {
  const auto it = subs_.find(id);
  if (it == subs_.end()) return;
  if (progressed) {
    it->second.ticks_stalled = 0;
    it->second.stalled_this_tick = false;
  } else {
    it->second.stalled_this_tick = true;
  }
}

std::vector<std::uint64_t> TelemetryHub::tick() {
  std::vector<std::uint64_t> evicted;
  for (auto& [id, sub] : subs_) {
    ++sub.ticks_idle;
    if (sub.stalled_this_tick) {
      sub.stalled_this_tick = false;
      if (++sub.ticks_stalled >= config_.stall_budget_ticks) {
        // GG_BOUNDED(one eviction per subscriber; table capped by max-subs)
        evicted.push_back(id);
      }
    }
  }
  for (const std::uint64_t id : evicted) {
    subs_.erase(id);
    ++evicted_total_;
  }
  return evicted;
}

}  // namespace gg::service
