// Line-oriented AF_UNIX server and client for greengpud.
//
// Deliberately minimal transport: one connection carries newline-terminated
// request lines, each answered with one newline-terminated reply line — or,
// after a successful WATCH, a one-way stream of telemetry frames.  All
// protocol meaning lives in ServiceCore::handle_line and the telemetry hub;
// this layer only moves bytes, so every service behaviour is testable
// without a socket and the daemon shell stays a thin loop.
//
// The server is a single-threaded poll() multiplexer over non-blocking
// descriptors.  Nothing in it can block the daemon: writes that would block
// are buffered (bounded) and retried next tick, reads drain whatever is
// available, EINTR is retried a bounded number of times, and EPIPE or
// ECONNRESET on a streaming connection evicts that subscriber instead of
// killing the process.  Every raw socket syscall is concentrated in the
// GG_NONBLOCK_IO-annotated helpers in the .cpp — greengpu-lint's
// socket-blocking-write rule flags any raw ::read/::write/::send/::recv in
// src/service/ outside such a helper.
//
// serve() polls with a short timeout and re-checks `stop` between waits, so
// a signal handler flipping the atomic stops the server within one tick
// without async-signal-unsafe work in the handler.  Each poll round is also
// one telemetry tick (StreamHooks::tick), which is what paces heartbeats
// and the slow-consumer stall budget.
//
// Chaos: point set_fault_injector() at a sim::SocketFaultInjector and every
// transport syscall first consults the injector — short reads and writes,
// simulated EINTR, mid-frame disconnects, stalled peers and EPIPE are then
// exercised deterministically from a seed (see tools/service_chaos.sh).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace gg::sim {
class SocketFaultInjector;
}  // namespace gg::sim

namespace gg::service {

/// Handle one request line (no newline), return one reply line (no newline).
using LineHandler = std::function<std::string(const std::string&)>;

/// Bridge from the transport to the telemetry hub.  The daemon fills these
/// with lambdas that take the core lock; tests may leave them empty, in
/// which case WATCH lines fall through to the ordinary LineHandler (which
/// answers 400).  All callbacks are invoked from the serve() thread only.
struct StreamHooks {
  /// Open a stream for a WATCH request line.  Returns the subscriber id
  /// (> 0) and sets `reply` to the success reply line, or returns 0 with
  /// `reply` set to the refusal line (400/503).
  std::function<std::uint64_t(const std::string& line, std::string& reply)>
      subscribe;
  /// Drop a subscriber (idempotent; disconnect and eviction both land here).
  std::function<void(std::uint64_t id)> unsubscribe;
  /// Next frame for a subscriber, without trailing newline; nullopt when it
  /// has nothing to send this tick.
  std::function<std::optional<std::string>(std::uint64_t id)> next_frame;
  /// Transport verdict for one tick: `progressed` is false when frames were
  /// pending but the peer accepted no bytes (a stall).
  std::function<void(std::uint64_t id, bool progressed)> note_progress;
  /// One poll tick; returns the ids of subscribers evicted for exhausting
  /// the stall budget (the server closes their connections).
  std::function<std::vector<std::uint64_t>()> tick;
};

/// Listening Unix-domain socket bound to `path` (any stale socket file is
/// replaced).  Throws std::runtime_error naming the path on bind failure.
class SocketServer {
 public:
  explicit SocketServer(std::string path);
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Route every transport syscall through `injector` (nullptr disarms).
  /// The injector must outlive serve(); the server does not own it.
  void set_fault_injector(sim::SocketFaultInjector* injector) {
    faults_ = injector;
  }

  /// Accept connections and feed each received line through `handler` until
  /// `stop` becomes true.  Single-threaded: the handler and every hook run
  /// on the calling thread, never concurrently.
  void serve(const LineHandler& handler, const std::atomic<bool>& stop);

  /// As above, with streaming: a line recognised as WATCH is offered to
  /// `hooks.subscribe`, and on success the connection flips to a one-way
  /// telemetry stream fed from `hooks.next_frame` with per-tick stall
  /// accounting and eviction.
  void serve(const LineHandler& handler, const StreamHooks& hooks,
             const std::atomic<bool>& stop);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  int listen_fd_{-1};
  sim::SocketFaultInjector* faults_{nullptr};
};

/// Client side: send each line of `lines` (newline-separated) over one
/// connection to the socket at `path`, collecting one reply line per request
/// line.  Retries EINTR (bounded) and partial writes; throws
/// std::runtime_error naming the path if the daemon is not there.
[[nodiscard]] std::string socket_request(const std::string& path,
                                         const std::string& lines);

/// Streaming client: connect to `path`, send `request` (one line), then
/// deliver every newline-terminated frame — including the initial reply
/// line — to `on_frame` until the peer closes, `on_frame` returns false, or
/// no bytes arrive for `idle_timeout_ms`.  Returns the number of frames
/// delivered.  Throws std::runtime_error if the daemon is not there.
std::size_t socket_watch(const std::string& path, const std::string& request,
                         int idle_timeout_ms,
                         const std::function<bool(const std::string&)>& on_frame);

}  // namespace gg::service
