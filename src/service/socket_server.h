// Line-oriented AF_UNIX server and client for greengpud.
//
// Deliberately minimal transport: one connection is one or more newline-
// terminated request lines, each answered with one newline-terminated reply
// line.  All protocol meaning lives in ServiceCore::handle_line — this layer
// only moves bytes, so every service behaviour is testable without a socket
// and the daemon shell stays a thin loop.
//
// serve() polls with a short timeout and re-checks `stop` between waits, so
// a signal handler flipping the atomic stops the server within one tick
// without async-signal-unsafe work in the handler.
#pragma once

#include <atomic>
#include <functional>
#include <string>

namespace gg::service {

/// Handle one request line (no newline), return one reply line (no newline).
using LineHandler = std::function<std::string(const std::string&)>;

/// Listening Unix-domain socket bound to `path` (any stale socket file is
/// replaced).  Throws std::runtime_error naming the path on bind failure.
class SocketServer {
 public:
  explicit SocketServer(std::string path);
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Accept connections and feed each received line through `handler` until
  /// `stop` becomes true.  Connections are served one at a time — the
  /// handler is never called concurrently.
  void serve(const LineHandler& handler, const std::atomic<bool>& stop);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  int listen_fd_{-1};
};

/// Client side: send each line of `lines` (newline-separated) over one
/// connection to the socket at `path`, collecting one reply line per request
/// line.  Throws std::runtime_error naming the path if the daemon is not
/// there.
[[nodiscard]] std::string socket_request(const std::string& path,
                                         const std::string& lines);

}  // namespace gg::service
