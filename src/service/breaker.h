// Per-device circuit breaker: quarantine a flaky simulated device, probe it
// back to health.
//
// The executor asks the breaker which device should run the next request.
// A device that fails `failure_threshold` requests in a row is opened
// (quarantined) and stops receiving work; after `probe_after` completions
// on other devices it becomes probe-ready and the next acquire() sends it a
// single half-open probe — success closes it, failure re-opens it and the
// probe clock starts over.  When every device is open the breaker force-
// probes the one quarantined longest instead of deadlocking the queue: an
// always-on service must keep trying *something*.
//
// Determinism: the breaker reads no clock — its probe schedule counts
// completed requests, and its entire state is a pure function of the
// (journaled) outcome sequence, so a resumed daemon rebuilds it exactly by
// replaying outcomes through on_result().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/service/types.h"

namespace gg::service {

class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  /// What on_result() did to the device's state (for logs and HEALTH).
  enum class Event : std::uint8_t { kNone, kOpened, kClosed, kReopened };

  CircuitBreaker(std::size_t devices, BreakerConfig config);

  /// The device the next request should run on: closed devices round-robin;
  /// a probe-ready open device when it is due (it turns half-open and gets
  /// exactly one request); the longest-quarantined device when everything
  /// is open.  Always returns a valid device.
  [[nodiscard]] std::size_t acquire();

  /// Feed the outcome of a request executed on `device`.
  Event on_result(std::size_t device, bool ok);

  [[nodiscard]] State state(std::size_t device) const;
  [[nodiscard]] std::size_t device_count() const { return slots_.size(); }
  /// Completions observed so far (the probe clock).
  [[nodiscard]] std::uint64_t completions() const { return completions_; }

  [[nodiscard]] static std::string to_string(State state);

 private:
  struct Slot {
    State state{State::kClosed};
    int consecutive_failures{0};
    /// Value of completions_ when the device was (last) opened.
    std::uint64_t opened_at{0};
  };

  BreakerConfig config_;
  std::vector<Slot> slots_;
  std::uint64_t completions_{0};
};

}  // namespace gg::service
