// ServiceCore: the greengpud state machine, free of sockets and threads.
//
// The daemon (tools/greengpud.cpp) is a thin shell: a socket loop feeding
// client lines into handle_line() and one executor thread driving
// take_next() / run_job() / complete().  Everything that decides anything
// lives here, synchronously, so the whole service — admission, shedding,
// deadlines, the circuit breaker, drain, resume, replay — is testable
// in-process without a daemon, and deterministic by construction:
//
//   * handle_line() and complete() mutate state and journal as one step;
//     the caller serializes them (the daemon holds a mutex, tests are
//     single-threaded).
//   * run_job() — the expensive part — is a pure static function of
//     (config, request, device, vtime); the daemon runs it outside the
//     lock so admissions stay responsive while work executes.
//   * The journal is the single source of truth: the report is generated
//     from it (write_report), a restarted daemon rebuilds every byte of
//     state from it (resume), and replay_window() re-executes journaled
//     outcomes from their recorded (seed, device) and verifies the journal
//     bit-for-bit.
//
// Protocol (one text line in, one text line out; replies start with a
// numeric status — see docs/SERVICE.md for the operator guide):
//
//   SUBMIT <workload> <policy> [priority=N] [deadline=S] [iters=N]
//   STATUS <seq> | STATS | HEALTH | PAUSE | RESUME | DRAIN | PING
//   WATCH [FROM <seq>]   (streaming connections only — see watch())
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/greengpu/runner.h"
#include "src/service/admission.h"
#include "src/service/breaker.h"
#include "src/service/journal.h"
#include "src/service/telemetry.h"
#include "src/service/types.h"

namespace gg::service {

class ServiceCore {
 public:
  /// One claimed unit of work: the request, the device the breaker chose,
  /// and the virtual time it started at (fixed until its outcome lands).
  struct Job {
    Request request;
    std::size_t device{0};
    Seconds vtime_before{0.0};
  };

  /// Open (or resume from) `journal_path`.  With `resume` the journal is
  /// read back: admitted-but-unfinished requests re-enter the queue, and
  /// virtual time, breaker state, the cost model and all counters are
  /// rebuilt — the daemon continues as if never killed.  Without `resume`
  /// the journal starts fresh.  Throws common::SnapshotError on a journal
  /// written by a different configuration.
  ServiceCore(ServiceConfig config, std::string journal_path, bool resume);

  /// Handle one protocol line; returns the reply line (no newline).  Hosts
  /// the service-post-admit kill-point (admission journaled, reply lost).
  [[nodiscard]] std::string handle_line(const std::string& line);

  // -- Executor half ---------------------------------------------------------

  /// Claim the next runnable request.  nullopt when paused, empty, or a job
  /// is already in flight (the executor is a single lane — serial execution
  /// is what makes the outcome order deterministic).
  [[nodiscard]] std::optional<Job> take_next();

  /// Execute `request` on `device`: the expensive, lock-free part.  Pure —
  /// both the live executor and offline replay produce outcomes through
  /// this one function, which is why replay can verify the journal
  /// bit-for-bit.  Propagates common::CrashInjected (supervised by the
  /// caller); a run the platform kills (ExperimentAborted) becomes a
  /// kFailed outcome that does not advance virtual time.
  [[nodiscard]] static OutcomeRecord run_job(const ServiceConfig& config,
                                             const Request& request,
                                             std::size_t device,
                                             Seconds vtime_before);

  /// Land `outcome` for the in-flight `job`: journal it (service-pre-result
  /// kill-point — executed but not yet journaled, the re-execute-on-resume
  /// window), advance virtual time, feed the breaker and the cost model.
  void complete(const Job& job, const OutcomeRecord& outcome);

  /// take_next + run_job + complete, one request, for tests and drain
  /// loops.  False when nothing is runnable.  Retries nothing: a crash
  /// (CrashInjected) unwinds to the caller with the job still in flight, so
  /// calling step() again re-executes it — the in-process restart model.
  bool step();

  /// Crashes survived by the caller's supervision (reported by STATS).
  void note_restart() { ++stats_.restarts; }

  // -- Streaming telemetry (WATCH) -------------------------------------------

  /// Open a WATCH subscription from a raw request line ("WATCH" for a live
  /// tail, "WATCH FROM <seq>" to resume from event seq).  A resume cursor is
  /// honoured by regenerating [seq, now] from the journal — the continuation
  /// is byte-identical to what an uninterrupted subscriber would have seen.
  /// Returns the subscriber id (> 0) with `reply` set to the success line,
  /// or 0 with `reply` set to the refusal (400 bad/beyond cursor, 503 full).
  [[nodiscard]] std::uint64_t watch(const std::string& line, std::string& reply);
  void unwatch(std::uint64_t id) { hub_.unsubscribe(id); }
  [[nodiscard]] std::optional<std::string> next_frame(std::uint64_t id) {
    return hub_.next_frame(id);
  }
  void telemetry_progress(std::uint64_t id, bool progressed) {
    hub_.note_progress(id, progressed);
  }
  [[nodiscard]] std::vector<std::uint64_t> telemetry_tick() {
    return hub_.tick();
  }
  [[nodiscard]] const TelemetryHub& telemetry() const { return hub_; }
  /// Journal records appended or resumed so far (STATS/HEALTH progress seq).
  [[nodiscard]] std::uint64_t journal_records() const { return journal_records_; }

  // -- State queries ---------------------------------------------------------

  [[nodiscard]] bool paused() const { return paused_; }
  [[nodiscard]] bool draining() const { return draining_; }
  /// Drain requested and nothing queued or in flight: safe to exit 0.
  [[nodiscard]] bool drained() const;
  [[nodiscard]] std::size_t queue_depth() const { return admission_.depth(); }
  [[nodiscard]] const ServiceStats& stats() const { return stats_; }
  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  [[nodiscard]] const CircuitBreaker& breaker() const { return breaker_; }
  [[nodiscard]] Seconds vtime() const { return vtime_; }

  // -- Journal-derived outputs -----------------------------------------------

  /// Regenerate the report (one render()ed line per record, journal order)
  /// from the journal and write it to `path`.
  void write_report(const std::string& report_path) const;

  /// Re-execute the journal's records [lo, hi] (0-based, inclusive): admits
  /// and sheds are rendered as-is; every outcome is re-run through
  /// run_job() from its journaled (seed, device) and compared field-for-
  /// field against the journal.  On success `out` holds the window's report
  /// lines (byte-identical to the same lines of write_report()) and true is
  /// returned; on divergence or a bad window, `error` names the record and
  /// field.
  [[nodiscard]] static bool replay_window(const ServiceConfig& config,
                                          const std::string& journal_path,
                                          std::size_t lo, std::size_t hi,
                                          std::string& out, std::string& error);

  /// Regenerate the telemetry stream from the journal, one "EVENT <seq>
  /// <payload>" line per event starting at `from_seq` (1-based).  This is
  /// the offline twin of WATCH FROM — the chaos harness byte-compares a
  /// resumed live stream against this output.  On a bad journal or a cursor
  /// beyond the stream, `error` says why and false is returned.
  [[nodiscard]] static bool events_window(const ServiceConfig& config,
                                          const std::string& journal_path,
                                          std::uint64_t from_seq,
                                          std::string& out, std::string& error);

 private:
  [[nodiscard]] std::string handle_submit(const std::vector<std::string>& tokens);
  [[nodiscard]] Seconds inflight_cost() const;
  void resume_from_journal();
  /// Fold one just-journaled record into the telemetry feed and broadcast
  /// the derived events.  Called after every journal append, so the live
  /// stream is the same pure function of the journal the offline
  /// generators compute.
  void publish_record(const ServiceRecord& record);

  ServiceConfig config_;
  ServiceJournal journal_;
  AdmissionController admission_;
  CircuitBreaker breaker_;
  TelemetryFeed feed_;
  TelemetryHub hub_;
  /// Journal records appended (or replayed at resume) through this core.
  std::uint64_t journal_records_{0};
  /// Scratch for publish_record (cleared per call; bounded by the two-
  /// payloads-per-record feed contract).
  std::vector<std::string> scratch_events_;
  ServiceStats stats_;
  /// Virtual service time: simulated seconds of completed (ok) work.
  Seconds vtime_{0.0};
  std::uint64_t next_seq_{1};
  std::optional<Job> inflight_;
  bool paused_{false};
  bool draining_{false};
  /// seq -> lifecycle state ("queued", "running", "ok", "failed",
  /// "shed:<reason>", "evicted") for STATUS.
  std::map<std::uint64_t, std::string> states_;
};

}  // namespace gg::service
