#include "src/service/types.h"

#include <stdexcept>

#include "src/common/snapshot.h"

namespace gg::service {

void TelemetryConfig::validate() const {
  if (ring_capacity == 0) {
    throw std::invalid_argument("TelemetryConfig: ring_capacity must be >= 1");
  }
  if (max_subscribers == 0) {
    throw std::invalid_argument("TelemetryConfig: max_subscribers must be >= 1");
  }
  if (heartbeat_ticks == 0) {
    throw std::invalid_argument("TelemetryConfig: heartbeat_ticks must be >= 1");
  }
  if (stall_budget_ticks == 0) {
    throw std::invalid_argument(
        "TelemetryConfig: stall_budget_ticks must be >= 1");
  }
}

void BreakerConfig::validate() const {
  if (failure_threshold < 1) {
    throw std::invalid_argument(
        "BreakerConfig: failure_threshold must be >= 1, got " +
        std::to_string(failure_threshold));
  }
  if (probe_after < 1) {
    throw std::invalid_argument("BreakerConfig: probe_after must be >= 1, got " +
                                std::to_string(probe_after));
  }
}

void ServiceConfig::validate() const {
  if (devices == 0) {
    throw std::invalid_argument("ServiceConfig: devices must be >= 1");
  }
  if (queue_capacity == 0) {
    throw std::invalid_argument("ServiceConfig: queue_capacity must be >= 1");
  }
  if (default_cost_estimate <= 0.0) {
    throw std::invalid_argument(
        "ServiceConfig: default_cost_estimate must be > 0, got " +
        std::to_string(default_cost_estimate));
  }
  if (max_restarts < 0) {
    throw std::invalid_argument("ServiceConfig: max_restarts must be >= 0");
  }
  for (std::size_t d : faulty_devices) {
    if (d >= devices) {
      throw std::invalid_argument("ServiceConfig: faulty device " +
                                  std::to_string(d) + " out of range (devices=" +
                                  std::to_string(devices) + ")");
    }
  }
  breaker.validate();
  faults.validate();
  backoff.validate();
  telemetry.validate();
}

std::uint64_t ServiceConfig::fingerprint() const {
  common::SnapshotWriter w;
  w.u64(devices);
  w.u64(queue_capacity);
  w.u64(seed);
  w.b(hardened);
  w.u64(max_iterations);
  w.f64(default_cost_estimate);
  w.u64(faults.seed);
  w.f64(faults.util_drop_rate);
  w.f64(faults.util_stale_rate);
  w.f64(faults.util_corrupt_rate);
  w.f64(faults.clock_reject_rate);
  w.f64(faults.clock_delay_rate);
  w.f64(faults.clock_delay.get());
  w.f64(faults.clock_clamp_rate);
  w.f64(faults.launch_fail_rate);
  w.f64(faults.host_fail_rate);
  w.f64(faults.throttle_mtbf.get());
  w.f64(faults.throttle_duration.get());
  w.u64(faulty_devices.size());
  for (std::size_t d : faulty_devices) w.u64(d);
  w.u64(static_cast<std::uint64_t>(breaker.failure_threshold));
  w.u64(static_cast<std::uint64_t>(breaker.probe_after));
  const auto& payload = w.payload();
  return static_cast<std::uint64_t>(payload.size()) << 32 |
         common::crc32(payload.data(), payload.size());
}

}  // namespace gg::service
