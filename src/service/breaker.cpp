#include "src/service/breaker.h"

#include <stdexcept>

namespace gg::service {

CircuitBreaker::CircuitBreaker(std::size_t devices, BreakerConfig config)
    : config_(config) {
  if (devices == 0) throw std::invalid_argument("CircuitBreaker: devices must be >= 1");
  config_.validate();
  // GG_BOUNDED(one slot per device, fixed at construction)
  slots_.resize(devices);
}

std::size_t CircuitBreaker::acquire() {
  const std::size_t n = slots_.size();
  // A probe-ready open device takes precedence over healthy rotation: the
  // whole point of the probe schedule is that quarantine is temporary.
  std::size_t probe = n;
  std::size_t oldest_open = n;
  for (std::size_t i = 0; i < n; ++i) {
    const Slot& slot = slots_[i];
    if (slot.state != State::kOpen) continue;
    if (oldest_open == n || slot.opened_at < slots_[oldest_open].opened_at) {
      oldest_open = i;
    }
    const bool due = completions_ >=
                     slot.opened_at + static_cast<std::uint64_t>(config_.probe_after);
    if (due && (probe == n || slot.opened_at < slots_[probe].opened_at)) {
      probe = i;
    }
  }
  if (probe != n) {
    slots_[probe].state = State::kHalfOpen;
    return probe;
  }
  // Closed devices round-robin.  The rotation cursor is the completion
  // count, not live acquire() history, so a daemon resumed from its journal
  // (which rebuilds the breaker by replaying outcomes) lands on the same
  // device the uninterrupted run would have picked.
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t i = (static_cast<std::size_t>(completions_) + step) % n;
    if (slots_[i].state == State::kClosed) return i;
  }
  // Everything is open or half-open.  Force-probe the longest-quarantined
  // open device rather than stalling the queue forever.
  if (oldest_open != n) {
    slots_[oldest_open].state = State::kHalfOpen;
    return oldest_open;
  }
  // All half-open (every device is mid-probe); reuse device 0 — with a
  // single executor this cannot happen, but never deadlock.
  return 0;
}

CircuitBreaker::Event CircuitBreaker::on_result(std::size_t device, bool ok) {
  Slot& slot = slots_.at(device);
  ++completions_;
  if (ok) {
    const bool was_unhealthy = slot.state != State::kClosed;
    slot.state = State::kClosed;
    slot.consecutive_failures = 0;
    return was_unhealthy ? Event::kClosed : Event::kNone;
  }
  ++slot.consecutive_failures;
  if (slot.state == State::kHalfOpen) {
    // Probe failed: back to quarantine, probe clock restarts from now.
    slot.state = State::kOpen;
    slot.opened_at = completions_;
    return Event::kReopened;
  }
  if (slot.state == State::kClosed &&
      slot.consecutive_failures >= config_.failure_threshold) {
    slot.state = State::kOpen;
    slot.opened_at = completions_;
    return Event::kOpened;
  }
  return Event::kNone;
}

CircuitBreaker::State CircuitBreaker::state(std::size_t device) const {
  return slots_.at(device).state;
}

std::string CircuitBreaker::to_string(State state) {
  switch (state) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace gg::service
