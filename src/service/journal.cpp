#include "src/service/journal.h"

#include <cstdio>

#include "src/common/annotations.h"
#include "src/common/snapshot.h"

namespace gg::service {

namespace {

/// "GGSL" — service log; distinct from the campaign journal's "GGJL".
/// v2 added the controller-telemetry counters (scaler_decisions,
/// division_moves) to outcome records for the WATCH stream.
constexpr common::Journal::Format kServiceFormat{/*magic=*/0x4C534747u,
                                                 /*version=*/2};

void save_admit(common::SnapshotWriter& w, const Request& r) {
  w.u64(r.seq);
  w.str(r.workload);
  w.str(r.policy);
  w.u64(r.priority);
  w.f64(r.deadline.get());
  w.u64(r.iterations);
  w.u64(r.seed);
  w.f64(r.vtime_admit.get());
}

Request load_admit(common::SnapshotReader& r) {
  Request out;
  out.seq = r.u64();
  out.workload = r.str();
  out.policy = r.str();
  out.priority = r.u64();
  out.deadline = Seconds{r.f64()};
  out.iterations = r.u64();
  out.seed = r.u64();
  out.vtime_admit = Seconds{r.f64()};
  r.expect_done();
  return out;
}

void save_shed(common::SnapshotWriter& w, const ShedRecord& s) {
  w.u64(s.seq);
  w.str(s.workload);
  w.str(s.policy);
  w.u64(s.priority);
  w.str(s.reason);
}

ShedRecord load_shed(common::SnapshotReader& r) {
  ShedRecord out;
  out.seq = r.u64();
  out.workload = r.str();
  out.policy = r.str();
  out.priority = r.u64();
  out.reason = r.str();
  r.expect_done();
  return out;
}

void save_outcome(common::SnapshotWriter& w, const OutcomeRecord& o) {
  w.u64(o.seq);
  w.u64(o.device);
  w.u8(static_cast<std::uint8_t>(o.status));
  w.f64(o.exec_time);
  w.f64(o.gpu_energy);
  w.f64(o.cpu_energy);
  w.b(o.verified);
  w.u64(o.fault_events);
  w.u64(o.watchdog_trips);
  w.u64(o.scaler_decisions);
  w.u64(o.division_moves);
  w.u8(static_cast<std::uint8_t>(o.deadline));
  w.f64(o.vtime_after);
}

OutcomeRecord load_outcome(common::SnapshotReader& r) {
  OutcomeRecord out;
  out.seq = r.u64();
  out.device = r.u64();
  out.status = static_cast<OutcomeStatus>(r.u8());
  out.exec_time = r.f64();
  out.gpu_energy = r.f64();
  out.cpu_energy = r.f64();
  out.verified = r.b();
  out.fault_events = r.u64();
  out.watchdog_trips = r.u64();
  out.scaler_decisions = r.u64();
  out.division_moves = r.u64();
  out.deadline = static_cast<DeadlineVerdict>(r.u8());
  out.vtime_after = r.f64();
  r.expect_done();
  return out;
}

void save_start(common::SnapshotWriter& w, const StartRecord& s) {
  w.u64(s.seq);
  w.u64(s.device);
  w.f64(s.vtime);
}

StartRecord load_start(common::SnapshotReader& r) {
  StartRecord out;
  out.seq = r.u64();
  out.device = r.u64();
  out.vtime = r.f64();
  r.expect_done();
  return out;
}

const char* deadline_word(DeadlineVerdict v) {
  switch (v) {
    case DeadlineVerdict::kNone: return "none";
    case DeadlineVerdict::kMet: return "met";
    case DeadlineVerdict::kViolated: return "violated";
  }
  return "?";
}

}  // namespace

std::string render(const ServiceRecord& record) {
  char buf[512];
  switch (record.kind) {
    case RecordKind::kAdmit: {
      const Request& a = record.admit;
      std::snprintf(buf, sizeof buf,
                    "admit seq=%llu workload=%s policy=%s priority=%llu "
                    "deadline=%.6f iters=%llu seed=%llu vtime=%.6f",
                    static_cast<unsigned long long>(a.seq), a.workload.c_str(),
                    a.policy.c_str(), static_cast<unsigned long long>(a.priority),
                    a.deadline.get(), static_cast<unsigned long long>(a.iterations),
                    static_cast<unsigned long long>(a.seed), a.vtime_admit.get());
      break;
    }
    case RecordKind::kShed: {
      const ShedRecord& s = record.shed;
      std::snprintf(buf, sizeof buf,
                    "shed seq=%llu workload=%s policy=%s priority=%llu reason=%s",
                    static_cast<unsigned long long>(s.seq), s.workload.c_str(),
                    s.policy.c_str(), static_cast<unsigned long long>(s.priority),
                    s.reason.c_str());
      break;
    }
    case RecordKind::kStart: {
      const StartRecord& s = record.start;
      std::snprintf(buf, sizeof buf, "start seq=%llu device=%llu vtime=%.6f",
                    static_cast<unsigned long long>(s.seq),
                    static_cast<unsigned long long>(s.device), s.vtime);
      break;
    }
    case RecordKind::kOutcome: {
      const OutcomeRecord& o = record.outcome;
      std::snprintf(buf, sizeof buf,
                    "outcome seq=%llu device=%llu status=%s exec=%.6f "
                    "gpu_j=%.6f cpu_j=%.6f verified=%d faults=%llu "
                    "watchdog=%llu scaler=%llu moves=%llu deadline=%s "
                    "vtime=%.6f",
                    static_cast<unsigned long long>(o.seq),
                    static_cast<unsigned long long>(o.device),
                    o.status == OutcomeStatus::kOk ? "ok" : "failed", o.exec_time,
                    o.gpu_energy, o.cpu_energy, o.verified ? 1 : 0,
                    static_cast<unsigned long long>(o.fault_events),
                    static_cast<unsigned long long>(o.watchdog_trips),
                    static_cast<unsigned long long>(o.scaler_decisions),
                    static_cast<unsigned long long>(o.division_moves),
                    deadline_word(o.deadline), o.vtime_after);
      break;
    }
  }
  return std::string(buf);
}

std::vector<ServiceRecord> ServiceJournal::read(const std::string& path,
                                                std::uint64_t fingerprint) {
  std::vector<ServiceRecord> records;
  for (auto& raw : common::Journal::read(path, kServiceFormat, fingerprint)) {
    try {
      auto reader = common::SnapshotReader::from_payload(
          std::move(raw.payload),
          path + " record at byte " + std::to_string(raw.offset));
      ServiceRecord record;
      record.kind = static_cast<RecordKind>(raw.tag);
      switch (record.kind) {
        case RecordKind::kAdmit: record.admit = load_admit(reader); break;
        case RecordKind::kShed: record.shed = load_shed(reader); break;
        case RecordKind::kOutcome: record.outcome = load_outcome(reader); break;
        case RecordKind::kStart: record.start = load_start(reader); break;
        default:
          throw common::SnapshotError(path + ": unknown record tag " +
                                      std::to_string(raw.tag) + " at byte " +
                                      std::to_string(raw.offset));
      }
      // GG_BOUNDED(one decoded record per journal record on disk)
      records.push_back(std::move(record));
    } catch (const common::SnapshotError&) {
      // Schema disagreement: drop this record and everything after it so
      // the next append starts on a boundary the current schema wrote.
      common::Journal::truncate_to(path, raw.offset);
      break;
    }
  }
  return records;
}

ServiceJournal::ServiceJournal(std::string path, std::uint64_t fingerprint,
                               bool fresh)
    : journal_(std::move(path), kServiceFormat, fingerprint, fresh) {}

void ServiceJournal::admit(const Request& request) {
  common::SnapshotWriter w;
  save_admit(w, request);
  journal_.append(static_cast<std::uint64_t>(RecordKind::kAdmit), w.payload());
}

void ServiceJournal::shed(const ShedRecord& record) {
  common::SnapshotWriter w;
  save_shed(w, record);
  journal_.append(static_cast<std::uint64_t>(RecordKind::kShed), w.payload());
}

void ServiceJournal::outcome(const OutcomeRecord& record) {
  common::SnapshotWriter w;
  save_outcome(w, record);
  journal_.append(static_cast<std::uint64_t>(RecordKind::kOutcome), w.payload());
}

void ServiceJournal::start(const StartRecord& record) {
  common::SnapshotWriter w;
  save_start(w, record);
  journal_.append(static_cast<std::uint64_t>(RecordKind::kStart), w.payload());
}

}  // namespace gg::service
