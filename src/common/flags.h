// Minimal command-line flag parsing for the CLI tool and examples.
//
// Supports `--key=value`, `--key value`, bare boolean `--key`, and
// positional arguments.  No registration step: callers query typed getters
// with defaults and can enumerate unknown flags for error reporting.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace gg {

class Flags {
 public:
  /// Parse argv (argv[0] is skipped).  Throws std::invalid_argument on
  /// malformed input (e.g. `--key=` with empty key).
  Flags(int argc, const char* const* argv);

  /// Construct from pre-split tokens (for tests).
  explicit Flags(const std::vector<std::string>& tokens);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters; return `fallback` when the flag is absent.  Throw
  /// std::invalid_argument when present but unparsable.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback = "") const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] long long get_int(const std::string& key, long long fallback) const;
  /// Bare `--key` or values 1/true/yes/on are true; 0/false/no/off false.
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  /// Flags present on the command line that the caller never queried —
  /// typically typos; check after all getters ran.
  [[nodiscard]] std::vector<std::string> unconsumed() const;

  /// Throws std::invalid_argument with a one-line "unknown flag: --x --y"
  /// message if any flag was never queried.  Every binary calls this after
  /// its last getter so a typo fails loudly instead of being ignored.
  void reject_unknown() const;

 private:
  void parse(const std::vector<std::string>& tokens);
  [[nodiscard]] std::optional<std::string> raw(const std::string& key) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> consumed_;
};

}  // namespace gg
