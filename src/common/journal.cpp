#include "src/common/journal.h"

#include <filesystem>
#include <fstream>
#include <utility>

#include "src/common/killpoint.h"
#include "src/common/snapshot.h"

namespace gg::common {

namespace {

constexpr std::size_t kHeaderSize = 4 + 4 + 8;
/// Per-record frame: tag + payload length + payload CRC.
constexpr std::size_t kRecordHeaderSize = 8 + 8 + 4;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = v << 8 | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | p[i];
  return v;
}

}  // namespace

std::vector<Journal::Record> Journal::read(const std::string& path, Format format,
                                           std::uint64_t fingerprint) {
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw SnapshotError("journal " + path + ": cannot open");
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  if (bytes.size() < kHeaderSize) {
    throw SnapshotError("journal " + path + ": truncated header (" +
                        std::to_string(bytes.size()) + " of " +
                        std::to_string(kHeaderSize) + " bytes at byte 0)");
  }
  if (get_u32(bytes.data()) != format.magic) {
    throw SnapshotError("journal " + path + ": bad magic at byte 0");
  }
  const std::uint32_t version = get_u32(bytes.data() + 4);
  if (version != format.version) {
    throw SnapshotError("journal " + path + ": version " + std::to_string(version) +
                        " unsupported at byte 4 (expected " +
                        std::to_string(format.version) + ")");
  }
  if (get_u64(bytes.data() + 8) != fingerprint) {
    throw SnapshotError("journal " + path +
                        ": configuration fingerprint mismatch at byte 8 — written "
                        "by a different configuration (refusing to mix results)");
  }

  std::vector<Record> records;
  std::size_t pos = kHeaderSize;
  std::size_t good_end = pos;
  while (pos + kRecordHeaderSize <= bytes.size()) {
    const std::uint64_t tag = get_u64(bytes.data() + pos);
    const std::uint64_t len = get_u64(bytes.data() + pos + 8);
    const std::uint32_t crc = get_u32(bytes.data() + pos + 16);
    const std::size_t payload_at = pos + kRecordHeaderSize;
    if (payload_at + len > bytes.size()) break;  // torn tail
    if (crc32(bytes.data() + payload_at, len) != crc) break;  // torn tail
    Record r;
    r.tag = tag;
    r.offset = pos;
    r.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(payload_at),
                     bytes.begin() + static_cast<std::ptrdiff_t>(payload_at + len));
    records.push_back(std::move(r));
    pos = payload_at + len;
    good_end = pos;
  }
  if (good_end < bytes.size()) {
    // Drop the torn tail so the next append starts on a record boundary.
    std::filesystem::resize_file(path, good_end);
  }
  return records;
}

void Journal::truncate_to(const std::string& path, std::uint64_t size) {
  std::filesystem::resize_file(path, size);
}

Journal::Journal(std::string path, Format format, std::uint64_t fingerprint, bool fresh)
    : path_(std::move(path)) {
  if (fresh || !std::filesystem::exists(path_)) {
    std::string header;
    put_u32(header, format.magic);
    put_u32(header, format.version);
    put_u64(header, fingerprint);
    // GG_LINT_ALLOW(checkpoint-write): journal header creation; records are
    // CRC-framed and a torn tail is truncated on read, so the append path
    // needs no write-rename.
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    if (!out) throw SnapshotError("journal " + path_ + ": cannot create");
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.flush();
    if (!out) {
      throw SnapshotError("journal " + path_ + ": short header write at byte 0");
    }
  }
}

void Journal::append(std::uint64_t tag, const std::vector<std::uint8_t>& payload) {
  std::string frame;
  frame.reserve(kRecordHeaderSize + payload.size());
  put_u64(frame, tag);
  put_u64(frame, payload.size());
  put_u32(frame, crc32(payload.data(), payload.size()));
  frame.append(reinterpret_cast<const char*>(payload.data()), payload.size());

  // GG_LINT_ALLOW(checkpoint-write): the journal is append-only by design;
  // each record carries its own CRC and read() truncates a torn tail, which
  // gives the same never-see-a-partial-record guarantee as write-rename
  // without rewriting the whole file per record.
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out) throw SnapshotError("journal " + path_ + ": cannot open for append");
  const auto at = static_cast<std::uint64_t>(std::filesystem::file_size(path_));
  // Two-flush write with the kill-point in between: an exit-mode kill here
  // leaves exactly the half-written record that read() detects and drops.
  const std::size_t half = frame.size() / 2;
  out.write(frame.data(), static_cast<std::streamsize>(half));
  out.flush();
  killpoint(KillPoint::kMidCheckpoint);
  out.write(frame.data() + half, static_cast<std::streamsize>(frame.size() - half));
  out.flush();
  if (!out) {
    throw SnapshotError("journal " + path_ + ": short append at byte " +
                        std::to_string(at));
  }
}

}  // namespace gg::common
