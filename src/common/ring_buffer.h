// Fixed-capacity circular buffer keeping the most recent N samples.
//
// Used by the utilization monitors (nvidia-smi style sampling windows) and the
// ondemand governor's load history.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace gg {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    if (capacity == 0) throw std::invalid_argument("RingBuffer capacity must be > 0");
  }

  void push(const T& value) {
    buf_[head_] = value;
    head_ = (head_ + 1) % buf_.size();
    if (size_ < buf_.size()) ++size_;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == buf_.size(); }

  /// Element i, where 0 is the oldest retained sample.
  [[nodiscard]] const T& operator[](std::size_t i) const {
    if (i >= size_) throw std::out_of_range("RingBuffer index");
    const std::size_t start = (head_ + buf_.size() - size_) % buf_.size();
    return buf_[(start + i) % buf_.size()];
  }

  [[nodiscard]] const T& newest() const {
    if (empty()) throw std::out_of_range("RingBuffer empty");
    return buf_[(head_ + buf_.size() - 1) % buf_.size()];
  }

  [[nodiscard]] const T& oldest() const { return (*this)[0]; }

  void clear() {
    size_ = 0;
    head_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_{0};
  std::size_t size_{0};
};

}  // namespace gg
