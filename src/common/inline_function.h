// Small-buffer-optimized move-only callable, the event queue's callback type.
//
// std::function allocates once the captures outgrow its ~16-byte SSO and
// always drags a type-erasure manager through every heap sift.  Simulation
// events are scheduled and moved millions of times per campaign, so the
// queue stores callables inline (up to `Capacity` bytes), relocates
// trivially-copyable captures with a fixed-size memcpy instead of an
// indirect call, and only falls back to the heap for oversized captures.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace gg {

template <std::size_t Capacity = 40>
class InlineAction {
 public:
  InlineAction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineAction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineAction(F&& f) {  // NOLINT(google-explicit-constructor): callable sink
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= Capacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      // Relocation memcpys the whole buffer, so the tail past sizeof(Fn)
      // must be initialized once, here (moves stay a plain fixed-size copy).
      if constexpr (std::is_trivially_copyable_v<Fn>) std::memset(buf_, 0, Capacity);
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      Fn* heap = new Fn(std::forward<F>(f));
      std::memset(buf_, 0, Capacity);
      std::memcpy(buf_, &heap, sizeof heap);
      ops_ = &boxed_ops<Fn>;
    }
  }

  InlineAction(InlineAction&& other) noexcept { steal(other); }

  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into `dst` from `src`, then destroy `src`.  Null when a
    /// Capacity-sized memcpy relocates the callable (trivial captures and the
    /// boxed pointer alike).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops inline_ops{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      std::is_trivially_copyable_v<Fn>
          ? nullptr
          : +[](void* dst, void* src) {
              Fn* from = static_cast<Fn*>(src);
              ::new (dst) Fn(std::move(*from));
              from->~Fn();
            },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* p) { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops boxed_ops{
      [](void* p) { (**static_cast<Fn**>(p))(); },
      nullptr,  // relocating the box is a pointer memcpy
      [](void* p) { delete *static_cast<Fn**>(p); },
  };

  void steal(InlineAction& other) noexcept {
    ops_ = other.ops_;
    other.ops_ = nullptr;
    if (ops_ == nullptr) return;
    if (ops_->relocate == nullptr) {
      std::memcpy(buf_, other.buf_, Capacity);
    } else {
      ops_->relocate(buf_, other.buf_);
    }
  }

  void reset() {
    if (ops_ != nullptr && ops_->destroy != nullptr) ops_->destroy(buf_);
    ops_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_{nullptr};
};

}  // namespace gg
