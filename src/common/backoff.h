// Exponential backoff with deterministic jitter.
//
// Supervision loops (greengpu::RecoverySupervisor, the greengpud service
// executor) restart crashed work under a budget; restarting immediately
// turns a persistent fault into a hot spin, and restarting on a fixed
// period synchronizes every supervisor in a fleet.  ExponentialBackoff
// produces the standard doubling delay sequence with a bounded jitter term
// drawn from a seeded common::Rng, so the schedule decorrelates restarts
// while staying bit-reproducible: one seed, one delay sequence, on every
// host.  The class is pure computation — it never sleeps and never reads a
// clock; callers decide what to do with the returned delay.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace gg::common {

struct BackoffConfig {
  /// Delay before the first retry.
  Seconds initial{0.01};
  /// Growth factor applied after every retry (>= 1).
  double multiplier{2.0};
  /// Ceiling the un-jittered delay saturates at.
  Seconds max{2.0};
  /// Jitter amplitude as a fraction of the base delay, in [0, 1]: each
  /// delay is perturbed by a uniform draw in [-jitter, +jitter] * base.
  double jitter{0.1};
  /// Seed of the jitter stream (deterministic: same seed, same schedule).
  std::uint64_t seed{0xB0FF5EEDULL};

  /// Throws std::invalid_argument naming the offending field.
  void validate() const {
    if (initial.get() <= 0.0) {
      throw std::invalid_argument("BackoffConfig: initial must be > 0, got " +
                                  std::to_string(initial.get()));
    }
    if (multiplier < 1.0) {
      throw std::invalid_argument("BackoffConfig: multiplier must be >= 1, got " +
                                  std::to_string(multiplier));
    }
    if (max.get() < initial.get()) {
      throw std::invalid_argument("BackoffConfig: max must be >= initial");
    }
    if (jitter < 0.0 || jitter > 1.0) {
      throw std::invalid_argument("BackoffConfig: jitter must be in [0, 1], got " +
                                  std::to_string(jitter));
    }
  }
};

class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(BackoffConfig config = {})
      : config_(config), rng_(config.seed), base_(config.initial) {
    config.validate();
  }

  /// Delay before the next retry; advances the schedule.  Never negative.
  [[nodiscard]] Seconds next() {
    ++attempts_;
    const double base = base_.get();
    const double jittered =
        base + base * config_.jitter * rng_.uniform(-1.0, 1.0);
    base_ = Seconds{std::min(base * config_.multiplier, config_.max.get())};
    return Seconds{jittered < 0.0 ? 0.0 : jittered};
  }

  /// Retries drawn since construction or the last reset().
  [[nodiscard]] int attempts() const { return attempts_; }

  /// Restart the schedule from `initial` (the jitter stream continues, so
  /// reset does not replay the previous delays).
  void reset() {
    base_ = config_.initial;
    attempts_ = 0;
  }

 private:
  BackoffConfig config_;
  Rng rng_;
  Seconds base_;
  int attempts_{0};
};

}  // namespace gg::common
