// Fixed-capacity queue with explicit admission.
//
// The greengpud service layer must never let a request queue grow without
// bound: under overload the correct behaviour is an explicit 503-style
// rejection at admission time, not an ever-deeper queue that collapses
// under its own memory and latency.  BoundedQueue makes the bound the API:
// try_push refuses when full (the caller sheds), and evict_worst lets an
// admission controller trade the lowest-priority queued element for a more
// important arrival.  All scans are deterministic (insertion order), so
// identical request sequences produce identical shed decisions.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <stdexcept>
#include <utility>

namespace gg::common {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("BoundedQueue: capacity must be >= 1");
    }
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] bool full() const { return items_.size() >= capacity_; }

  /// Admit `value` if there is room; false means the caller must shed.
  [[nodiscard]] bool try_push(T value) {
    if (full()) return false;
    items_.push_back(std::move(value));
    return true;
  }

  /// Oldest element, FIFO.
  [[nodiscard]] std::optional<T> pop_front() {
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  /// Remove and return the element that `better(candidate, element)` never
  /// prefers — i.e. the minimum under `better` (ties resolved toward the
  /// oldest element, keeping eviction deterministic).  `better(a, b)` must
  /// be a strict weak ordering meaning "a should outlive b".
  template <typename Better>
  [[nodiscard]] std::optional<T> evict_worst(Better better) {
    if (items_.empty()) return std::nullopt;
    std::size_t worst = 0;
    for (std::size_t i = 1; i < items_.size(); ++i) {
      if (better(items_[worst], items_[i])) worst = i;
    }
    T out = std::move(items_[worst]);
    items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(worst));
    return out;
  }

  /// Remove and return the element that `better` prefers over every other
  /// (the maximum under `better`; ties resolved toward the oldest element,
  /// so equal-priority elements leave in FIFO order).
  template <typename Better>
  [[nodiscard]] std::optional<T> pop_best(Better better) {
    if (items_.empty()) return std::nullopt;
    std::size_t best = 0;
    for (std::size_t i = 1; i < items_.size(); ++i) {
      if (better(items_[i], items_[best])) best = i;
    }
    T out = std::move(items_[best]);
    items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(best));
    return out;
  }

  /// Deterministic insertion-order view (admission-cost scans).
  [[nodiscard]] const std::deque<T>& items() const { return items_; }

 private:
  std::deque<T> items_;
  std::size_t capacity_;
};

}  // namespace gg::common
