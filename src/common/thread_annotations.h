// Clang thread-safety analysis annotations (no-ops on GCC and MSVC).
//
// The concurrency in this codebase is deliberately small — two hand-rolled
// pools (common::JobPool, cudalite::ThreadPool), the campaign progress
// callback, and single-owner controller state — which is exactly why it can
// be annotated exhaustively.  Under Clang the library builds with
// `-Wthread-safety` promoted to an error (see GREENGPU_THREAD_SAFETY in the
// top-level CMakeLists.txt), so "which mutex guards this member" is a
// compile-time contract rather than a comment.
//
// Style follows the standard attribute set (abseil's thread_annotations.h):
//  * data members:      `T x_ GG_GUARDED_BY(mutex_);`
//  * private helpers:   `void drain() GG_REQUIRES(mutex_);`
//  * lock juggling the analysis cannot follow (std::unique_lock handed
//    across call boundaries, condition_variable re-acquisition):
//    `GG_NO_THREAD_SAFETY_ANALYSIS`, always with a comment saying why.
//
// Single-owner types (dividers, recorders, the event queue) are not locked;
// they use common::ThreadChecker (thread_checker.h) instead, which turns
// cross-thread misuse into a crash in debug/sanitizer builds.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define GG_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GG_THREAD_ANNOTATION(x)
#endif

#define GG_CAPABILITY(x) GG_THREAD_ANNOTATION(capability(x))
#define GG_SCOPED_CAPABILITY GG_THREAD_ANNOTATION(scoped_lockable)
#define GG_GUARDED_BY(x) GG_THREAD_ANNOTATION(guarded_by(x))
#define GG_PT_GUARDED_BY(x) GG_THREAD_ANNOTATION(pt_guarded_by(x))
#define GG_REQUIRES(...) GG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GG_ACQUIRE(...) GG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GG_RELEASE(...) GG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GG_TRY_ACQUIRE(...) GG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define GG_EXCLUDES(...) GG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define GG_RETURN_CAPABILITY(x) GG_THREAD_ANNOTATION(lock_returned(x))
#define GG_NO_THREAD_SAFETY_ANALYSIS GG_THREAD_ANNOTATION(no_thread_safety_analysis)
