#include "src/common/job_pool.h"

#include <algorithm>

namespace gg::common {

JobPool::JobPool(std::size_t workers) {
  worker_target_ =
      workers ? workers
              : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  // The submitting thread participates in every batch, so spawn one fewer.
  const std::size_t spawn = worker_target_ - 1;
  workers_.reserve(spawn);
  for (std::size_t i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobPool::~JobPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void JobPool::drain(std::unique_lock<std::mutex>& lock,
                    const std::shared_ptr<Batch>& batch) {
  for (;;) {
    if (batch->failed || batch->next >= batch->n) return;
    const std::size_t index = batch->next++;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*batch->fn)(index);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    ++batch->done;
    if (error) {
      batch->failed = true;
      batch->errors.emplace_back(index, error);
    }
    if (batch->done == batch->next && (batch->next == batch->n || batch->failed)) {
      done_cv_.notify_all();
    }
  }
}

void JobPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return shutdown_ || current_ != nullptr; });
    if (shutdown_) return;
    const std::shared_ptr<Batch> batch = current_;
    drain(lock, batch);
    // Park until the batch is retired so a fast worker does not spin on an
    // exhausted batch.
    done_cv_.wait(lock, [this, &batch] { return shutdown_ || current_ != batch; });
    if (shutdown_) return;
  }
}

void JobPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (worker_target_ <= 1 || n == 1) {
    // Serial fast path: no threads involved, exceptions propagate directly.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;

  std::unique_lock<std::mutex> lock(mutex_);
  current_ = batch;
  work_cv_.notify_all();
  drain(lock, batch);
  done_cv_.wait(lock, [&batch] {
    return batch->done == batch->next && (batch->next == batch->n || batch->failed);
  });
  current_.reset();
  done_cv_.notify_all();  // release workers parked on this batch

  if (!batch->errors.empty()) {
    const auto lowest = std::min_element(
        batch->errors.begin(), batch->errors.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    const std::exception_ptr error = lowest->second;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace gg::common
