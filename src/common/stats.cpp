#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace gg {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = x;
    min_ = x;
    max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 100.0) return xs.back();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double geometric_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace gg
