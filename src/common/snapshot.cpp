#include "src/common/snapshot.h"

#include <array>
#include <bit>
#include <cstdio>
#include <fstream>

#include "src/common/killpoint.h"

namespace gg::common {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

/// Fixed header: magic u32 + version u32 + payload length u64 + CRC u32.
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 4;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t read_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | p[i];
  return v;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = kCrcTable[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void SnapshotWriter::u32(std::uint32_t v) { put_u32(buf_, v); }

void SnapshotWriter::u64(std::uint64_t v) { put_u64(buf_, v); }

void SnapshotWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void SnapshotWriter::str(std::string_view s) {
  u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void SnapshotWriter::f64_vec(const std::vector<double>& v) {
  u64(v.size());
  for (double x : v) f64(x);
}

std::vector<std::uint8_t> SnapshotWriter::frame() const {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + buf_.size());
  put_u32(out, kSnapshotMagic);
  put_u32(out, kSnapshotVersion);
  put_u64(out, buf_.size());
  put_u32(out, crc32(buf_.data(), buf_.size()));
  out.insert(out.end(), buf_.begin(), buf_.end());
  return out;
}

void SnapshotWriter::write_atomic(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  const std::vector<std::uint8_t> bytes = frame();
  {
    // GG_LINT_ALLOW(checkpoint-write): this IS the atomic write-rename
    // helper — the temp file is renamed over the target below.
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw SnapshotError("snapshot: cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) throw SnapshotError("snapshot: short write to " + tmp);
  }
  // Torn-write window: a crash here leaves `<path>.tmp` and the previous
  // good snapshot (or no snapshot) at `path` — readers never see a partial
  // frame.
  killpoint(KillPoint::kMidCheckpoint);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw SnapshotError("snapshot: cannot rename " + tmp + " to " + path);
  }
}

SnapshotReader SnapshotReader::from_frame(const std::uint8_t* data, std::size_t size,
                                          const std::string& context) {
  const std::string where =
      context.empty() ? std::string("snapshot") : "snapshot " + context;
  if (size < kHeaderSize) {
    throw SnapshotError(where + ": truncated header (" + std::to_string(size) +
                        " of " + std::to_string(kHeaderSize) + " bytes at byte 0)");
  }
  if (read_u32(data) != kSnapshotMagic) {
    throw SnapshotError(where + ": bad magic at byte 0 (not a GGSN snapshot)");
  }
  const std::uint32_t version = read_u32(data + 4);
  if (version != kSnapshotVersion) {
    throw SnapshotError(where + ": schema version " + std::to_string(version) +
                        " unsupported at byte 4 (expected " +
                        std::to_string(kSnapshotVersion) + ")");
  }
  const std::uint64_t length = read_u64(data + 8);
  if (length != size - kHeaderSize) {
    throw SnapshotError(where + ": payload length mismatch at byte 8 (declared " +
                        std::to_string(length) + ", have " +
                        std::to_string(size - kHeaderSize) + ")");
  }
  const std::uint32_t declared_crc = read_u32(data + 16);
  const std::uint32_t actual_crc = crc32(data + kHeaderSize, length);
  if (declared_crc != actual_crc) {
    throw SnapshotError(where + ": CRC mismatch at byte 16 (corrupt payload)");
  }
  SnapshotReader r;
  r.buf_.assign(data + kHeaderSize, data + size);
  r.context_ = context;
  return r;
}

SnapshotReader SnapshotReader::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotError("snapshot " + path + ": cannot open");
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  return from_frame(bytes.data(), bytes.size(), path);
}

SnapshotReader SnapshotReader::from_payload(std::vector<std::uint8_t> payload,
                                            const std::string& context) {
  SnapshotReader r;
  r.buf_ = std::move(payload);
  r.context_ = context;
  return r;
}

std::string SnapshotReader::where() const {
  return context_.empty() ? std::string("snapshot") : "snapshot " + context_;
}

void SnapshotReader::need(std::size_t n) const {
  if (pos_ + n > buf_.size()) {
    throw SnapshotError(where() + ": payload over-read at byte " +
                        std::to_string(pos_) + " (need " + std::to_string(n) +
                        ", have " + std::to_string(buf_.size() - pos_) +
                        "; schema/data mismatch)");
  }
}

std::uint8_t SnapshotReader::u8() {
  need(1);
  return buf_[pos_++];
}

std::uint32_t SnapshotReader::u32() {
  need(4);
  const std::uint32_t v = read_u32(buf_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t SnapshotReader::u64() {
  need(8);
  const std::uint64_t v = read_u64(buf_.data() + pos_);
  pos_ += 8;
  return v;
}

double SnapshotReader::f64() { return std::bit_cast<double>(u64()); }

std::string SnapshotReader::str() {
  const std::uint64_t n = u64();
  need(n);
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                static_cast<std::size_t>(n));
  pos_ += n;
  return s;
}

std::vector<double> SnapshotReader::f64_vec() {
  const std::uint64_t n = u64();
  need(n * 8);
  std::vector<double> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(f64());
  return v;
}

void SnapshotReader::expect_done() const {
  if (pos_ != buf_.size()) {
    throw SnapshotError(where() + ": " + std::to_string(buf_.size() - pos_) +
                        " trailing payload bytes at byte " + std::to_string(pos_) +
                        " (schema/data mismatch)");
  }
}

}  // namespace gg::common
