// Strongly typed physical quantities used throughout the simulator.
//
// The GreenGPU simulator mixes times, energies, powers and frequencies in
// nearly every equation; a thin dimensional wrapper catches unit mistakes at
// compile time with zero runtime cost.  Only the handful of cross-unit
// operations that are physically meaningful (J = W*s, util = t/t, ...) are
// defined.
#pragma once

#include <cmath>
#include <compare>
#include <ostream>

namespace gg {

/// A double tagged with a dimension.  All arithmetic stays within the
/// dimension except the explicitly provided cross-unit operators below.
template <typename Tag>
struct Quantity {
  double value{0.0};

  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value(v) {}

  [[nodiscard]] constexpr double get() const { return value; }

  constexpr Quantity& operator+=(Quantity rhs) {
    value += rhs.value;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity rhs) {
    value -= rhs.value;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    value *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    value /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) { return Quantity{a.value + b.value}; }
  friend constexpr Quantity operator-(Quantity a, Quantity b) { return Quantity{a.value - b.value}; }
  friend constexpr Quantity operator*(Quantity a, double s) { return Quantity{a.value * s}; }
  friend constexpr Quantity operator*(double s, Quantity a) { return Quantity{a.value * s}; }
  friend constexpr Quantity operator/(Quantity a, double s) { return Quantity{a.value / s}; }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) { return a.value / b.value; }
  friend constexpr Quantity operator-(Quantity a) { return Quantity{-a.value}; }

  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

  friend std::ostream& operator<<(std::ostream& os, Quantity q) { return os << q.value; }
};

struct SecondsTag {};
struct JoulesTag {};
struct WattsTag {};
struct MegahertzTag {};

/// Simulated wall-clock time in seconds.
using Seconds = Quantity<SecondsTag>;
/// Energy in joules.
using Joules = Quantity<JoulesTag>;
/// Power in watts.
using Watts = Quantity<WattsTag>;
/// Clock frequency in MHz (the unit nvidia-settings reports).
using Megahertz = Quantity<MegahertzTag>;

// Physically meaningful cross-unit arithmetic.
[[nodiscard]] constexpr Joules operator*(Watts p, Seconds t) { return Joules{p.value * t.value}; }
[[nodiscard]] constexpr Joules operator*(Seconds t, Watts p) { return Joules{p.value * t.value}; }
[[nodiscard]] constexpr Watts operator/(Joules e, Seconds t) { return Watts{e.value / t.value}; }
[[nodiscard]] constexpr Seconds operator/(Joules e, Watts p) { return Seconds{e.value / p.value}; }

namespace literals {
constexpr Seconds operator""_s(long double v) { return Seconds{static_cast<double>(v)}; }
constexpr Seconds operator""_s(unsigned long long v) { return Seconds{static_cast<double>(v)}; }
constexpr Seconds operator""_ms(long double v) { return Seconds{static_cast<double>(v) * 1e-3}; }
constexpr Seconds operator""_ms(unsigned long long v) { return Seconds{static_cast<double>(v) * 1e-3}; }
constexpr Joules operator""_J(long double v) { return Joules{static_cast<double>(v)}; }
constexpr Joules operator""_J(unsigned long long v) { return Joules{static_cast<double>(v)}; }
constexpr Watts operator""_W(long double v) { return Watts{static_cast<double>(v)}; }
constexpr Watts operator""_W(unsigned long long v) { return Watts{static_cast<double>(v)}; }
constexpr Megahertz operator""_MHz(long double v) { return Megahertz{static_cast<double>(v)}; }
constexpr Megahertz operator""_MHz(unsigned long long v) { return Megahertz{static_cast<double>(v)}; }
}  // namespace literals

/// Clamp a dimensionless utilization into [0, 1].
[[nodiscard]] constexpr double clamp_unit(double u) {
  if (u < 0.0) return 0.0;
  if (u > 1.0) return 1.0;
  return u;
}

/// Approximate equality for doubles used by tests and convergence checks.
[[nodiscard]] inline bool approx_equal(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol * (1.0 + std::fmax(std::fabs(a), std::fabs(b)));
}

}  // namespace gg
