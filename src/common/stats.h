// Streaming and batch statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <vector>

namespace gg {

/// Welford's online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Linear-interpolated percentile of an unsorted sample, p in [0, 100].
/// Returns 0 for an empty sample.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

/// Geometric mean; all inputs must be > 0.  Returns 0 for empty input.
[[nodiscard]] double geometric_mean(const std::vector<double>& xs);

/// Arithmetic mean; returns 0 for empty input.
[[nodiscard]] double mean(const std::vector<double>& xs);

/// Exponentially weighted moving average filter.
class Ewma {
 public:
  /// alpha in (0, 1]: weight of the newest sample.
  explicit Ewma(double alpha) : alpha_(alpha) {}

  double update(double x) {
    if (!seeded_) {
      value_ = x;
      seeded_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
    return value_;
  }

  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool seeded() const { return seeded_; }

  /// Put the filter back into a checkpointed state (alpha is configuration,
  /// not state — it comes from the rebuilt controller).
  void restore(double value, bool seeded) {
    value_ = value;
    seeded_ = seeded;
  }

 private:
  double alpha_;
  double value_{0.0};
  bool seeded_{false};
};

}  // namespace gg
