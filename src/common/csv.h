// Minimal CSV emission used by the benchmark harnesses and trace recorder.
//
// Every bench binary prints its figure/table as CSV so results can be diffed
// and re-plotted; quoting follows RFC 4180 (quote fields containing comma,
// quote or newline; double embedded quotes).
#pragma once

#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace gg {

/// Escape a single CSV field per RFC 4180.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Format a double compactly (up to 6 significant digits, no trailing zeros).
[[nodiscard]] std::string csv_number(double v);

/// Streams rows to an std::ostream.  The writer does not own the stream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(&os) {}

  /// Write a header or data row of preformatted string fields.
  void row(const std::vector<std::string>& fields);

  /// Convenience: variadic row accepting strings and arithmetic values.
  template <typename... Ts>
  void row_values(const Ts&... vals) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(Ts));
    (fields.push_back(to_field(vals)), ...);
    row(fields);
  }

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  static std::string to_field(const std::string& s) { return s; }
  static std::string to_field(std::string_view s) { return std::string{s}; }
  static std::string to_field(const char* s) { return std::string{s}; }
  template <typename T>
  static std::string to_field(const T& v) {
    if constexpr (std::is_floating_point_v<T>) {
      return csv_number(static_cast<double>(v));
    } else {
      std::ostringstream oss;
      oss << v;
      return oss.str();
    }
  }

  std::ostream* os_;
  std::size_t rows_{0};
};

/// Parse one CSV line into fields (used by tests to round-trip traces).
[[nodiscard]] std::vector<std::string> csv_parse_line(std::string_view line);

}  // namespace gg
