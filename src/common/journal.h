// Generic append-only, CRC-framed journal.
//
// Two subsystems keep an append-only record stream on disk: the campaign
// journal (greengpu/recovery.h — one record per completed campaign cell)
// and the greengpud service journal (service/journal.h — one record per
// admission decision and per completed request).  Both need the same
// crash-consistency story, so it lives here once:
//
//   header:  [magic u32][version u32][fingerprint u64]
//   record:  [tag u64][payload length u64][payload CRC32 u32][payload]
//
// Appends are flushed per record; a process killed mid-append leaves a torn
// trailing record that read() detects (short frame or CRC mismatch),
// truncates away in place, and reports — everything before it stays
// trusted.  The header fingerprint refuses to mix streams written by a
// different configuration.  Every error message names the offending file
// and byte offset, so a daemon log line is enough to find the damage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gg::common {

class Journal {
 public:
  /// Per-stream framing identity: campaign and service journals use
  /// different magics so one can never be resumed as the other.
  struct Format {
    std::uint32_t magic{0};
    std::uint32_t version{0};
  };

  /// One intact record as stored: `tag` is caller-defined (cell index,
  /// record kind, ...), `offset` is where the record's frame starts in the
  /// file (for error reporting and partial-trust truncation).
  struct Record {
    std::uint64_t tag{0};
    std::vector<std::uint8_t> payload;
    std::uint64_t offset{0};
  };

  /// Scan `path`: validate the header against `format`/`fingerprint`, load
  /// every intact record and truncate a torn tail in place.  Throws
  /// common::SnapshotError naming the path and byte offset on a
  /// missing/foreign/version- or fingerprint-mismatched journal.
  [[nodiscard]] static std::vector<Record> read(const std::string& path,
                                                Format format,
                                                std::uint64_t fingerprint);

  /// Truncate `path` to `size` bytes — the hook callers use to drop records
  /// *after* a byte offset when a payload fails to parse (the journal layer
  /// cannot know payload schemas; see CampaignJournal::read).
  static void truncate_to(const std::string& path, std::uint64_t size);

  /// Open for appending.  `fresh` truncates and writes a new header;
  /// otherwise records append after the existing (already truncated-to-good)
  /// content.  Throws common::SnapshotError on I/O failure.
  Journal(std::string path, Format format, std::uint64_t fingerprint, bool fresh);

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Append one record and flush.  Hosts the mid-checkpoint kill-point
  /// between two half-record flushes, so an exit-mode kill here leaves
  /// exactly the torn tail that read() truncates.
  void append(std::uint64_t tag, const std::vector<std::uint8_t>& payload);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace gg::common
