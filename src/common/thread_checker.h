// Debug-build single-owner checker for types that are *not* thread-safe by
// design (dividers, decision recorders, the event queue).
//
// These types have no mutex to hang a GG_GUARDED_BY on: their contract is
// "one simulation, one thread" — each campaign cell owns a private platform,
// so sharing an instance across threads is always a bug, never a feature.
// `ThreadChecker` makes that contract crash loudly instead of corrupting
// state silently: the first thread to touch the object claims it, and any
// later touch from a different thread aborts with the class name in the
// message.  The TSan CI lane runs the stress suite with these checks armed,
// so an accidental share is caught even when the race window never opens.
//
// In release builds (NDEBUG, no sanitizer) the checker is an empty struct
// and `assert_owner` compiles to nothing — zero bytes, zero cycles on the
// hot paths it protects.
#pragma once

#if defined(__has_feature)
#define GG_HAS_FEATURE(x) __has_feature(x)
#else
#define GG_HAS_FEATURE(x) 0
#endif

#if !defined(NDEBUG) || defined(__SANITIZE_THREAD__) || \
    GG_HAS_FEATURE(thread_sanitizer)
#define GG_THREAD_CHECKER_ENABLED 1
#else
#define GG_THREAD_CHECKER_ENABLED 0
#endif

#if GG_THREAD_CHECKER_ENABLED
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#endif

namespace gg::common {

#if GG_THREAD_CHECKER_ENABLED

class ThreadChecker {
 public:
  ThreadChecker() = default;
  /// Copying or moving a checked object produces a fresh, unowned checker:
  /// the copy lives wherever it was made, not where the original ran.
  ThreadChecker(const ThreadChecker&) {}
  ThreadChecker& operator=(const ThreadChecker&) {
    owner_.store(std::thread::id{}, std::memory_order_release);
    return *this;
  }

  /// Claim the object for the calling thread on first use; abort if a
  /// different thread touches it afterwards (until release()).
  void assert_owner(const char* what) const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};  // "unowned"
    if (owner_.compare_exchange_strong(expected, self, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      return;  // first touch: claimed
    }
    if (expected != self) {
      std::fprintf(stderr,
                   "ThreadChecker: %s is single-owner but was used from two "
                   "threads\n",
                   what);
      std::abort();
    }
  }

  /// Hand the object to another thread (legal: ownership transfer between
  /// iterations, e.g. a divider moved into a worker).  The next
  /// assert_owner() re-claims.
  void release() const { owner_.store(std::thread::id{}, std::memory_order_release); }

 private:
  mutable std::atomic<std::thread::id> owner_{};
};

#else  // release: compiles away entirely

class ThreadChecker {
 public:
  void assert_owner(const char*) const {}
  void release() const {}
};

#endif

}  // namespace gg::common
