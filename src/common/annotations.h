// Source annotations consumed by tools/greengpu_lint.py (and, where the
// compiler understands them, by codegen).
//
// `GG_HOT` marks a function as hot-path: the lint scans the annotated
// definition's body for heap-allocation calls and fails the build if one
// appears without an explicit, reasoned suppression.  This turns the PR 3
// "zero allocations per scaler step / per event-queue op" claim from a
// benchmark observation into a machine-checked invariant.  The macro also
// carries the compiler's `hot` attribute so annotated functions get the
// optimizer's hot-path treatment.
//
// The lint additionally keeps a *registry* of functions that must stay
// annotated (see REQUIRED_HOT in tools/greengpu_lint.py): removing GG_HOT
// from one of them is itself a diagnostic, so the invariant cannot rot by
// someone deleting the marker.
//
// Suppressions: a violating line is accepted only when it, or the line
// directly above it, carries
//
//     // GG_LINT_ALLOW(<rule-id>): <non-empty reason>
//
// e.g. `// GG_LINT_ALLOW(hot-alloc): amortized growth to working size`.
// The reason is mandatory — the lint rejects bare suppressions.
// `GG_HOT_BATCH` marks a batch-stepper kernel: a function whose inner loop
// walks many campaign cells (or SoA lanes) in lockstep.  The lint's
// batch-loop-alloc rule scans only the *loop bodies* inside the annotated
// definition for heap allocation — per-batch setup before the loop may
// allocate, but per-cell work inside the loop must not, or an O(cells)
// allocation storm hides in the hot path.  The hot-registry substring check
// also covers GG_HOT_BATCH, so required batch kernels cannot silently lose
// their annotation.
//
// `GG_PIPELINE_STAGE` marks a pipeline stage callback: a lambda (or
// function) that runs inside the asynchronous stream machinery — completion
// callbacks of memcpy_*_async / launch stages in pipeline workloads.  The
// lint's pipeline-blocking-sync rule scans the annotated body for
// `synchronize(` / `device_synchronize(` calls: a blocking wait inside a
// stage callback serializes the very pipeline the stage belongs to (and can
// deadlock the scheduler's issue loop), so stages must express ordering with
// events (`stream_wait_event`) and completion callbacks instead.  The macro
// itself expands to nothing; it exists for the lint and the reader.
//
// `GG_NONBLOCK_IO` marks a function as a sanctioned raw-socket I/O helper:
// a routine whose contract is "never blocks the daemon" — it operates on
// O_NONBLOCK descriptors (or is a client-side helper outside the daemon
// loop), retries EINTR a bounded number of times, treats EAGAIN as "come
// back next poll tick", and converts EPIPE/ECONNRESET into an orderly
// close instead of a crash.  The lint's socket-blocking-write rule flags
// every raw ::read/::write/::send/::recv in src/service/ that appears
// *outside* a GG_NONBLOCK_IO-annotated body: a bare blocking write is how
// one stalled WATCH subscriber wedges the whole daemon.  The macro expands
// to nothing; it exists for the lint and the reader.
//
// `GG_BOUNDED(reason)` marks a container-growth site in src/service/ as
// deliberately bounded: the lint's service-growth rule flags every
// push_back/emplace/push in the service layer's hot paths, because an
// unbounded queue is how a daemon turns overload into an OOM kill.  The
// annotation names the bound ("capacity enforced by BoundedQueue", "one
// entry per device, fixed at startup") on the growth line or the line
// above it; a bare GG_BOUNDED() without a reason is itself a diagnostic.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define GG_HOT __attribute__((hot))
#define GG_HOT_BATCH __attribute__((hot))
#else
#define GG_HOT
#define GG_HOT_BATCH
#endif

#define GG_BOUNDED(reason)

#define GG_PIPELINE_STAGE

#define GG_NONBLOCK_IO
