// Fixed-size worker pool for batches of independent, index-addressed jobs —
// the engine behind parallel experiment campaigns and bench sweeps.
//
// The pool is deliberately work-stealing-free: a batch is a contiguous index
// range claimed in order from one shared counter, and every job writes its
// result to an index-determined slot.  Nothing about the output depends on
// which worker ran a job or in what order jobs finished, so callers get
// byte-identical results for any worker count (see map()).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/thread_annotations.h"

namespace gg::common {

class JobPool {
 public:
  /// `workers` = 0 selects hardware_concurrency (at least 1).  A pool with
  /// one worker runs every batch inline on the submitting thread.
  explicit JobPool(std::size_t workers = 0);
  ~JobPool() GG_NO_THREAD_SAFETY_ANALYSIS;  // lock_guard opaque to analysis

  JobPool(const JobPool&) = delete;
  JobPool& operator=(const JobPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return worker_target_; }

  /// Run fn(i) for i in [0, n); blocks until every started job finished.
  /// After the first exception no further indices are issued; once in-flight
  /// jobs drain, the recorded exception with the lowest index is rethrown.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn)
      GG_NO_THREAD_SAFETY_ANALYSIS;

  /// Deterministic fan-out: out[i] = fn(i), independent of worker count.
  template <typename T>
  std::vector<T> map(std::size_t n, const std::function<T(std::size_t)>& fn) {
    std::vector<T> out(n);
    run(n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Run fn(first, last) over the ceil(n / batch) contiguous groups
  /// [g*batch, min(n, (g+1)*batch)); the work unit handed to a worker is a
  /// whole group, never a single index.  The batch campaign engine uses this
  /// to keep one workload's cells on one worker (its verification memo and
  /// warm-up prefix snapshots are per-group state).  Same determinism
  /// contract as run(): groups land in index-determined slots, so results
  /// are byte-identical for any worker count.
  void run_batches(std::size_t n, std::size_t batch,
                   const std::function<void(std::size_t, std::size_t)>& fn) {
    if (batch == 0) batch = 1;
    const std::size_t groups = n / batch + (n % batch != 0 ? 1 : 0);
    run(groups, [&](std::size_t g) {
      const std::size_t first = g * batch;
      const std::size_t last = std::min(n, first + batch);
      fn(first, last);
    });
  }

 private:
  /// All Batch fields are protected by the owning pool's mutex_ while the
  /// lock is held across claim/retire transitions; jobs themselves run
  /// unlocked (the index hand-off is the synchronization point).
  struct Batch {
    std::size_t n{0};
    std::size_t next{0};
    std::size_t done{0};
    bool failed{false};
    const std::function<void(std::size_t)>* fn{nullptr};
    /// (index, exception) pairs; the lowest index wins deterministically.
    std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
  };

  /// Lock juggling through std::unique_lock (unannotated in libstdc++) is
  /// opaque to Clang's analysis, hence the explicit opt-outs; the
  /// GG_GUARDED_BY contracts below still police every other accessor.
  void worker_loop() GG_NO_THREAD_SAFETY_ANALYSIS;
  /// Claim and run jobs from `batch` until it is exhausted; returns with the
  /// pool mutex held (callers pass the lock they already own).
  void drain(std::unique_lock<std::mutex>& lock, const std::shared_ptr<Batch>& batch)
      GG_NO_THREAD_SAFETY_ANALYSIS;

  std::size_t worker_target_{1};
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Batch> current_ GG_GUARDED_BY(mutex_);
  bool shutdown_ GG_GUARDED_BY(mutex_){false};
};

}  // namespace gg::common
