// Versioned, checksummed binary snapshot format for crash-consistent
// checkpoints.
//
// Every piece of learned controller state (weight tables, division ratios,
// RNG streams, telemetry recorders) serializes through this one format so
// a killed process can restart from its last good checkpoint:
//
//   [magic "GGSN"][schema version u32][payload length u64][CRC32 u32][payload]
//
// All integers are little-endian regardless of host; doubles round-trip as
// their raw IEEE-754 bit pattern, so restored state is bit-identical to
// what was saved.  Files are written atomically (write to `<path>.tmp`,
// flush, rename), so a crash mid-write leaves either the previous good
// snapshot or no snapshot — never a torn one.  Readers validate magic,
// version, length and CRC before handing out a single byte; any mismatch
// (truncated file, flipped bit, wrong schema) throws SnapshotError, which
// callers treat as "fall back to the last good state / cold start".
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gg::common {

/// Corrupt, truncated, version-mismatched or unreadable snapshot.  Always
/// recoverable: the consistent reaction is a cold start.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// File magic: "GGSN" as bytes on disk.
inline constexpr std::uint32_t kSnapshotMagic = 0x4E534747u;
/// Bumped whenever the serialized layout of any snapshottable type changes.
/// v2: per-GPU copy-engine state in Platform::save, copy sampler in
/// NvmlDevice, overlap/copy-busy fields in IterationRecord + ScalerDecision.
/// v3: controller-telemetry counters (scaler_decisions, division_moves) in
/// the service journal's OutcomeRecord.
inline constexpr std::uint32_t kSnapshotVersion = 3;

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG one) of `size` bytes.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

/// Append-only binary serializer.  Build the payload with the typed
/// writers, then either `write_atomic()` it to a file or embed `payload()`
/// in a larger frame (the campaign journal does the latter).
class SnapshotWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw IEEE-754 bit pattern; restores bit-identically.
  void f64(double v);
  /// Length-prefixed UTF-8 bytes.
  void str(std::string_view s);
  void f64_vec(const std::vector<double>& v);

  [[nodiscard]] const std::vector<std::uint8_t>& payload() const { return buf_; }

  /// The full on-disk frame: header + CRC + payload.
  [[nodiscard]] std::vector<std::uint8_t> frame() const;

  /// Atomically replace `path` with this snapshot: write `<path>.tmp`,
  /// flush, rename.  Crash-consistent — a reader never observes a partial
  /// file.  Throws SnapshotError on I/O failure.  This is the ONLY
  /// sanctioned way to put a snapshot on disk (greengpu-lint's
  /// checkpoint-write rule flags direct ofstream writes to checkpoint
  /// paths).
  void write_atomic(const std::string& path) const;

 private:
  std::vector<std::uint8_t> buf_;
};

/// Validating deserializer.  Construction from a file or frame checks
/// magic, version, declared length and CRC up front; the typed readers
/// then throw SnapshotError on any over-read, so a partial-state load is
/// impossible — either the whole payload is trusted or none of it is.
class SnapshotReader {
 public:
  /// Parse a full frame (header + CRC + payload).  Throws SnapshotError;
  /// `context` (usually the file path) is threaded into every diagnostic so
  /// daemon logs name the offending file and byte offset.
  static SnapshotReader from_frame(const std::uint8_t* data, std::size_t size,
                                   const std::string& context = "");
  /// Load and validate `path`.  Throws SnapshotError (missing file,
  /// truncation, bad magic/version/CRC), always naming `path` and the
  /// offending byte offset.
  static SnapshotReader from_file(const std::string& path);
  /// Wrap an already-validated payload (journal records carry their own
  /// framing and CRC).  `context` names the payload's origin for reader
  /// diagnostics.
  static SnapshotReader from_payload(std::vector<std::uint8_t> payload,
                                     const std::string& context = "");

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] bool b() { return u8() != 0; }
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<double> f64_vec();

  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }
  /// Throws SnapshotError if any payload bytes were left unconsumed —
  /// trailing garbage means the schema and the data disagree.
  void expect_done() const;

 private:
  SnapshotReader() = default;
  void need(std::size_t n) const;
  /// "snapshot <context>: " or "snapshot: " — every diagnostic's prefix.
  [[nodiscard]] std::string where() const;

  std::vector<std::uint8_t> buf_;
  std::size_t pos_{0};
  std::string context_;
};

}  // namespace gg::common
