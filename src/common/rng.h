// Deterministic, seedable random number generation.
//
// Experiments must be bit-reproducible across runs and platforms, so we ship
// our own xoshiro256** implementation instead of relying on std::mt19937's
// distribution functions (whose results are implementation-defined for
// std::uniform_real_distribution et al.).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace gg {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr std::uint64_t operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  constexpr std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's multiply-shift rejection-free-enough bound; bias negligible
    // for the n values used here but we reject to stay exact.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Derive an independent child generator (for per-component streams).
  [[nodiscard]] constexpr Rng fork() { return Rng{next() ^ 0xD1B54A32D192ED03ULL}; }

  /// Raw stream state, for checkpointing.  Restoring via restore_state()
  /// continues the exact sequence (including a cached normal() spare).
  struct State {
    std::array<std::uint64_t, 4> s{};
    double spare{0.0};
    bool have_spare{false};
  };

  [[nodiscard]] constexpr State state() const {
    return State{state_, spare_, have_spare_};
  }

  constexpr void restore_state(const State& st) {
    state_ = st.s;
    spare_ = st.spare;
    have_spare_ = st.have_spare;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
  double spare_{0.0};
  bool have_spare_{false};
};

}  // namespace gg
