// Named kill-points for crash-consistency testing.
//
// A kill-point is a deterministic place in the code where a test or the CLI
// can make the process "die": either by throwing CrashInjected (in-process
// supervision, used by ctest) or by calling std::_Exit (real process death,
// used by the CI crash-recovery matrix — no destructors, no stream flushes,
// exactly what a SIGKILL leaves behind).  Instrumented code calls
// `killpoint(KillPoint::k...)` at the named spots; the check is one relaxed
// atomic load when nothing is armed, so shipping the probes in the scaler
// step and the checkpoint writer costs nothing in normal runs.
//
// This lives in common/ (not sim/) because the snapshot writer itself hosts
// the mid-checkpoint kill-point and common cannot depend on sim;
// sim::CrashInjector (src/sim/crash.h) is the user-facing RAII layer that
// arms and disarms these points.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gg::common {

/// Where a run can be killed.  Names (for --crash-at and logs) are the
/// kebab-case forms returned by to_string().
enum class KillPoint : std::uint8_t {
  kPreScalerStep,      ///< before an Algorithm 1 scaler step runs
  kPostScalerStep,     ///< after the step's decision is recorded
  kMidCheckpoint,      ///< inside a checkpoint/journal write, torn-file window
  kMidCampaignCell,    ///< after a campaign cell finished, before it is journaled
  kServicePostAdmit,   ///< after a greengpud admission is journaled, before reply
  kServicePreResult,   ///< after a greengpud request executed, before its result
                       ///< is journaled (the re-execute-on-resume window)
};

inline constexpr int kKillPointCount = 6;

[[nodiscard]] std::string_view to_string(KillPoint point);
/// Accepts the kebab-case names; throws std::invalid_argument otherwise.
[[nodiscard]] KillPoint kill_point_from_string(std::string_view name);

/// What happens when an armed kill-point triggers.
enum class CrashMode : std::uint8_t {
  kThrow,  ///< throw CrashInjected (in-process supervisor / ctest)
  kExit,   ///< std::_Exit(kCrashExitCode): real process death (CLI / CI)
};

/// Exit status of a kExit crash, checked by the CI matrix to distinguish
/// an injected kill from a genuine failure.
inline constexpr int kCrashExitCode = 70;

/// The exception a kThrow kill-point raises.  Propagates through
/// common::JobPool (which rethrows after draining in-flight cells), so a
/// RecoverySupervisor catches it at the campaign boundary.
class CrashInjected : public std::runtime_error {
 public:
  explicit CrashInjected(KillPoint point)
      : std::runtime_error("crash injected at kill-point " +
                           std::string(to_string(point))),
        point_(point) {}
  [[nodiscard]] KillPoint point() const { return point_; }

 private:
  KillPoint point_;
};

namespace detail {
/// Hits remaining until the armed point fires; <= 0 means disarmed or
/// out of shots (a kill-point is single-shot by default, so a resumed
/// in-process run sails past it).
extern std::atomic<std::int64_t> g_kill_remaining;
extern std::atomic<std::uint8_t> g_kill_point;
extern std::atomic<std::uint8_t> g_kill_mode;
[[noreturn]] void trigger(KillPoint point);
}  // namespace detail

/// Arm `point` to fire on its `nth` hit (1 = the next one) process-wide.
/// `shots` is how many times the point fires in total: after each firing it
/// re-arms for another `nth` hits until the shots are spent.  shots > 1 is
/// how tests model a *persistent* fault — a supervisor that restarts the
/// work crashes again at the same place until its budget runs out (only
/// meaningful in kThrow mode; a kExit firing ends the process).  Only one
/// point can be armed at a time; re-arming replaces the previous arm.
/// Thread-safe: concurrent hits from campaign workers elect exactly one
/// trigger.
void arm_kill_point(KillPoint point, std::uint64_t nth, CrashMode mode,
                    std::uint64_t shots = 1);

/// Disarm whatever is armed (idempotent).
void disarm_kill_points();

/// True if the armed point has already fired (always false in kExit mode,
/// for obvious reasons).
[[nodiscard]] bool kill_point_fired();

/// The probe instrumented code calls.  One relaxed load when disarmed.
inline void killpoint(KillPoint point) {
  if (detail::g_kill_remaining.load(std::memory_order_relaxed) <= 0) return;
  if (static_cast<KillPoint>(detail::g_kill_point.load(std::memory_order_relaxed)) !=
      point) {
    return;
  }
  if (detail::g_kill_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    detail::trigger(point);
  }
}

}  // namespace gg::common
