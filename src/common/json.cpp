#include "src/common/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace gg {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    if (wrote_root_) throw std::logic_error("JsonWriter: multiple roots");
    return;
  }
  switch (stack_.back()) {
    case Ctx::kObjectExpectKey:
      throw std::logic_error("JsonWriter: value where a key is required");
    case Ctx::kObjectExpectValue:
      break;  // key already emitted the separator
    case Ctx::kArray:
      if (needs_comma_) *os_ << ',';
      break;
  }
}

void JsonWriter::after_value() {
  if (stack_.empty()) {
    wrote_root_ = true;
    return;
  }
  if (stack_.back() == Ctx::kObjectExpectValue) {
    stack_.back() = Ctx::kObjectExpectKey;
    needs_comma_ = true;
  } else {
    needs_comma_ = true;
  }
}

void JsonWriter::begin_object() {
  before_value();
  *os_ << '{';
  stack_.push_back(Ctx::kObjectExpectKey);
  needs_comma_ = false;
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Ctx::kObjectExpectKey) {
    throw std::logic_error("JsonWriter: end_object mismatch");
  }
  stack_.pop_back();
  *os_ << '}';
  after_value();
}

void JsonWriter::begin_array() {
  before_value();
  *os_ << '[';
  stack_.push_back(Ctx::kArray);
  needs_comma_ = false;
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Ctx::kArray) {
    throw std::logic_error("JsonWriter: end_array mismatch");
  }
  stack_.pop_back();
  *os_ << ']';
  after_value();
}

void JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Ctx::kObjectExpectKey) {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  if (needs_comma_) *os_ << ',';
  *os_ << '"' << json_escape(k) << "\":";
  stack_.back() = Ctx::kObjectExpectValue;
  needs_comma_ = false;
}

void JsonWriter::value(std::string_view v) {
  before_value();
  *os_ << '"' << json_escape(v) << '"';
  after_value();
}

void JsonWriter::value(double v) {
  before_value();
  *os_ << json_number(v);
  after_value();
}

void JsonWriter::value(long long v) {
  before_value();
  *os_ << v;
  after_value();
}

void JsonWriter::value(bool v) {
  before_value();
  *os_ << (v ? "true" : "false");
  after_value();
}

void JsonWriter::null() {
  before_value();
  *os_ << "null";
  after_value();
}

}  // namespace gg
