#include "src/common/killpoint.h"

#include <cstdlib>

namespace gg::common {

namespace detail {
std::atomic<std::int64_t> g_kill_remaining{0};
std::atomic<std::uint8_t> g_kill_point{0};
std::atomic<std::uint8_t> g_kill_mode{0};
std::atomic<bool> g_kill_fired{false};
std::atomic<std::uint64_t> g_kill_nth{1};
std::atomic<std::uint64_t> g_kill_shots{1};

void trigger(KillPoint point) {
  g_kill_fired.store(true, std::memory_order_release);
  if (static_cast<CrashMode>(g_kill_mode.load(std::memory_order_relaxed)) ==
      CrashMode::kExit) {
    // Real process death: no destructors, no atexit, no stream flushes —
    // buffered journal bytes are lost exactly as with SIGKILL.
    std::_Exit(kCrashExitCode);
  }
  // Multi-shot arms model a persistent fault: re-arm for another `nth`
  // hits before unwinding, so the supervised retry crashes here again
  // until the shots are spent.
  if (g_kill_shots.fetch_sub(1, std::memory_order_acq_rel) > 1) {
    g_kill_remaining.store(
        static_cast<std::int64_t>(g_kill_nth.load(std::memory_order_relaxed)),
        std::memory_order_release);
  }
  throw CrashInjected(point);
}
}  // namespace detail

std::string_view to_string(KillPoint point) {
  switch (point) {
    case KillPoint::kPreScalerStep: return "pre-scaler-step";
    case KillPoint::kPostScalerStep: return "post-scaler-step";
    case KillPoint::kMidCheckpoint: return "mid-checkpoint";
    case KillPoint::kMidCampaignCell: return "mid-campaign-cell";
    case KillPoint::kServicePostAdmit: return "service-post-admit";
    case KillPoint::kServicePreResult: return "service-pre-result";
  }
  return "?";
}

KillPoint kill_point_from_string(std::string_view name) {
  if (name == "pre-scaler-step") return KillPoint::kPreScalerStep;
  if (name == "post-scaler-step") return KillPoint::kPostScalerStep;
  if (name == "mid-checkpoint") return KillPoint::kMidCheckpoint;
  if (name == "mid-campaign-cell") return KillPoint::kMidCampaignCell;
  if (name == "service-post-admit") return KillPoint::kServicePostAdmit;
  if (name == "service-pre-result") return KillPoint::kServicePreResult;
  throw std::invalid_argument(
      "unknown kill-point '" + std::string(name) +
      "' (valid: pre-scaler-step post-scaler-step mid-checkpoint "
      "mid-campaign-cell service-post-admit service-pre-result)");
}

void arm_kill_point(KillPoint point, std::uint64_t nth, CrashMode mode,
                    std::uint64_t shots) {
  if (nth == 0) throw std::invalid_argument("arm_kill_point: nth must be >= 1");
  if (shots == 0) throw std::invalid_argument("arm_kill_point: shots must be >= 1");
  detail::g_kill_point.store(static_cast<std::uint8_t>(point), std::memory_order_relaxed);
  detail::g_kill_mode.store(static_cast<std::uint8_t>(mode), std::memory_order_relaxed);
  detail::g_kill_fired.store(false, std::memory_order_relaxed);
  detail::g_kill_nth.store(nth, std::memory_order_relaxed);
  detail::g_kill_shots.store(shots, std::memory_order_relaxed);
  detail::g_kill_remaining.store(static_cast<std::int64_t>(nth),
                                 std::memory_order_release);
}

void disarm_kill_points() {
  detail::g_kill_remaining.store(0, std::memory_order_release);
}

bool kill_point_fired() {
  return detail::g_kill_fired.load(std::memory_order_acquire);
}

}  // namespace gg::common
