#include "src/common/csv.h"

#include <cmath>
#include <cstdio>

namespace gg {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string{field};
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string csv_number(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    if (!first) *os_ << ',';
    first = false;
    *os_ << csv_escape(f);
  }
  *os_ << '\n';
  ++rows_;
}

std::vector<std::string> csv_parse_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // ignore
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace gg
