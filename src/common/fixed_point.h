// Unsigned Q0.8 fixed point in [0, 1].
//
// Section VI of the paper sketches an on-chip implementation of the WMA
// frequency-scaling tier: a 36-byte weight table with 8-bit entries updated by
// shift-add logic.  This type backs the `FixedWeightTable` used to validate
// that 8-bit precision is "accurate enough for the purpose of picking up the
// largest weight".
#pragma once

#include <cstdint>

namespace gg {

/// Value = raw / 255, so 0x00 -> 0.0 and 0xFF -> 1.0 exactly.
class UQ08 {
 public:
  constexpr UQ08() = default;

  /// Quantize a double in [0, 1]; values outside are saturated.
  [[nodiscard]] static constexpr UQ08 from_double(double v) {
    if (v <= 0.0) return UQ08{std::uint8_t{0}};
    if (v >= 1.0) return UQ08{std::uint8_t{255}};
    // Round to nearest representable value.
    return UQ08{static_cast<std::uint8_t>(v * 255.0 + 0.5)};
  }

  [[nodiscard]] static constexpr UQ08 from_raw(std::uint8_t raw) { return UQ08{raw}; }
  [[nodiscard]] static constexpr UQ08 one() { return UQ08{std::uint8_t{255}}; }
  [[nodiscard]] static constexpr UQ08 zero() { return UQ08{std::uint8_t{0}}; }

  [[nodiscard]] constexpr std::uint8_t raw() const { return raw_; }
  [[nodiscard]] constexpr double to_double() const { return static_cast<double>(raw_) / 255.0; }

  /// Fixed-point multiply with round-to-nearest: (a*b)/255.
  [[nodiscard]] friend constexpr UQ08 operator*(UQ08 a, UQ08 b) {
    const std::uint32_t prod = static_cast<std::uint32_t>(a.raw_) * b.raw_;
    return UQ08{static_cast<std::uint8_t>((prod + 127) / 255)};
  }

  /// Saturating add (stays in [0, 1]).
  [[nodiscard]] friend constexpr UQ08 saturating_add(UQ08 a, UQ08 b) {
    const std::uint32_t s = static_cast<std::uint32_t>(a.raw_) + b.raw_;
    return UQ08{static_cast<std::uint8_t>(s > 255 ? 255 : s)};
  }

  /// Complement: 1 - x (exact in this representation).
  [[nodiscard]] constexpr UQ08 complement() const {
    return UQ08{static_cast<std::uint8_t>(255 - raw_)};
  }

  [[nodiscard]] friend constexpr bool operator==(UQ08 a, UQ08 b) = default;
  [[nodiscard]] friend constexpr auto operator<=>(UQ08 a, UQ08 b) = default;

 private:
  constexpr explicit UQ08(std::uint8_t raw) : raw_(raw) {}
  std::uint8_t raw_{0};
};

}  // namespace gg
