#include "src/common/flags.h"

#include <algorithm>
#include <stdexcept>

namespace gg {

namespace {
/// Sentinel stored for bare boolean flags (`--verbose`).
const std::string kBareFlag = "\x01";
}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  parse(tokens);
}

Flags::Flags(const std::vector<std::string>& tokens) { parse(tokens); }

void Flags::parse(const std::vector<std::string>& tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok.rfind("--", 0) != 0) {
      positional_.push_back(tok);
      continue;
    }
    const std::string body = tok.substr(2);
    if (body.empty()) throw std::invalid_argument("Flags: bare '--'");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string key = body.substr(0, eq);
      if (key.empty()) throw std::invalid_argument("Flags: missing key in " + tok);
      values_[key] = body.substr(eq + 1);
      continue;
    }
    // `--key value` if the next token exists and is not itself a flag;
    // otherwise a bare boolean.
    if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      values_[body] = tokens[i + 1];
      ++i;
    } else {
      values_[body] = kBareFlag;
    }
  }
}

std::optional<std::string> Flags::raw(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  consumed_.insert(key);
  return it->second;
}

bool Flags::has(const std::string& key) const { return raw(key).has_value(); }

std::string Flags::get_string(const std::string& key, const std::string& fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  if (*v == kBareFlag) {
    throw std::invalid_argument("Flags: --" + key + " requires a value");
  }
  return *v;
}

double Flags::get_double(const std::string& key, double fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const double d = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing characters");
    return d;
  } catch (const std::exception&) {
    throw std::invalid_argument("Flags: --" + key + " expects a number, got '" + *v + "'");
  }
}

long long Flags::get_int(const std::string& key, long long fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const long long n = std::stoll(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing characters");
    return n;
  } catch (const std::exception&) {
    throw std::invalid_argument("Flags: --" + key + " expects an integer, got '" + *v + "'");
  }
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  if (*v == kBareFlag) return true;
  std::string lower = *v;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "1" || lower == "true" || lower == "yes" || lower == "on") return true;
  if (lower == "0" || lower == "false" || lower == "no" || lower == "off") return false;
  throw std::invalid_argument("Flags: --" + key + " expects a boolean, got '" + *v + "'");
}

std::vector<std::string> Flags::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (!consumed_.contains(key)) out.push_back(key);
  }
  return out;
}

void Flags::reject_unknown() const {
  const auto unknown = unconsumed();
  if (unknown.empty()) return;
  std::string msg = "unknown flag:";
  for (const auto& key : unknown) msg += " --" + key;
  throw std::invalid_argument(msg);
}

}  // namespace gg
