// Minimal streaming JSON writer for experiment reports.
//
// Emits syntactically valid, deterministic JSON with correct string escaping
// and full-precision numbers.  Writer-only by design: experiment pipelines
// here produce reports, they don't consume them.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace gg {

/// Escape a string per RFC 8259 (quotes, backslash, control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Format a double as a JSON number (round-trip precision; NaN/inf become
/// null, which JSON cannot represent).
[[nodiscard]] std::string json_number(double v);

/// Streaming writer with explicit begin/end nesting.  Usage:
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("runs");
///   w.begin_array();
///   ...
/// Misuse (e.g. a value where a key is required) throws std::logic_error.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(&os) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object key; must be followed by exactly one value (or container).
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view{v}); }
  void value(double v);
  void value(long long v);
  void value(int v) { value(static_cast<long long>(v)); }
  void value(std::size_t v) { value(static_cast<long long>(v)); }
  void value(bool v);
  void null();

  /// Convenience: key + scalar value.
  template <typename T>
  void kv(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

  /// The writer is complete when every container has been closed.
  [[nodiscard]] bool complete() const { return stack_.empty() && wrote_root_; }

 private:
  enum class Ctx { kObjectExpectKey, kObjectExpectValue, kArray };
  void before_value();
  void after_value();

  std::ostream* os_;
  std::vector<Ctx> stack_;
  bool needs_comma_{false};
  bool wrote_root_{false};
};

}  // namespace gg
