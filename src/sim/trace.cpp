#include "src/sim/trace.h"

#include "src/common/csv.h"

namespace gg::sim {

TraceRecorder::TraceRecorder(Platform& platform, Seconds period)
    : platform_(&platform),
      period_(period),
      gpu_sampler_(platform.gpu(), platform.queue()),
      cpu_sampler_(platform.cpu(), platform.queue()),
      last_energy_(platform.snapshot()) {
  arm();
}

void TraceRecorder::arm() {
  next_ = platform_->queue().schedule_in(period_, [this] { take_sample(); });
}

void TraceRecorder::stop() {
  stopped_ = true;
  next_.cancel();
}

void TraceRecorder::take_sample() {
  if (stopped_) return;
  const GpuUtilization gu = gpu_sampler_.sample();
  const double cu = cpu_sampler_.sample();
  const EnergySnapshot e = platform_->snapshot();
  const EnergyDelta d = Platform::delta(last_energy_, e);
  last_energy_ = e;

  TraceSample s;
  s.time = platform_->now();
  s.gpu_core_freq = platform_->gpu().core_frequency();
  s.gpu_mem_freq = platform_->gpu().mem_frequency();
  s.cpu_freq = platform_->cpu().frequency();
  s.gpu_core_util = gu.core;
  s.gpu_mem_util = gu.memory;
  s.cpu_util = cu;
  if (d.elapsed > Seconds{0.0}) {
    s.gpu_power = d.gpu / d.elapsed;
    s.cpu_power = d.cpu / d.elapsed;
  }
  samples_.push_back(s);
  arm();
}

void TraceRecorder::write_csv(std::ostream& os) const {
  CsvWriter w(os);
  w.row_values("time_s", "gpu_core_mhz", "gpu_mem_mhz", "cpu_mhz", "gpu_core_util",
               "gpu_mem_util", "cpu_util", "gpu_power_w", "cpu_power_w");
  for (const auto& s : samples_) {
    w.row_values(s.time.get(), s.gpu_core_freq.get(), s.gpu_mem_freq.get(),
                 s.cpu_freq.get(), s.gpu_core_util, s.gpu_mem_util, s.cpu_util,
                 s.gpu_power.get(), s.cpu_power.get());
  }
}

}  // namespace gg::sim
