// Simulated CPU package (AMD Phenom II X2 class) with DVFS.
//
// The CPU executes FIFO work items across its cores and additionally models
// the *synchronous-communication spin* the paper observed: with the CUDA 3.2
// blocking APIs, the host thread busy-waits at 100 % utilization while the
// GPU computes, which defeats the ondemand governor (Section VII-A, Fig. 6c).
// `set_spinning(true)` puts the device into that state: full utilization and
// full dynamic power on one core, but no work progress.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "src/sim/dvfs.h"
#include "src/sim/event_queue.h"
#include "src/sim/power_meter.h"
#include "src/sim/specs.h"

namespace gg::sim {

/// Work description for one CPU-side task.
struct CpuWork {
  /// Divisible work units; must be > 0.
  double units{1.0};
  /// Aggregate "ops" per unit (spread across the active cores).
  double ops_per_unit{0.0};
  /// Frequency-independent time per unit (memory stalls, I/O).
  Seconds overhead_per_unit{0.0};
  /// Cores used by this task (<= spec.cores); 0 means all cores.
  int active_cores{0};
};

/// Cumulative CPU activity counters for windowed utilization sampling.
struct CpuActivityCounters {
  /// Integral over time of package utilization in [0, 1]
  /// (busy cores / total cores; spinning counts as busy).
  double util_integral{0.0};
  /// Total time at least one core was busy or spinning.
  double busy_integral{0.0};
  /// Total time spent in the synchronous-wait spin state (no real work).
  double spin_integral{0.0};
};

class CpuDevice {
 public:
  using CompletionCallback = std::function<void()>;

  CpuDevice(EventQueue& queue, CpuSpec spec, DvfsTable table, std::size_t initial_level);

  /// The paper's testbed CPU at the peak P-state.
  static CpuDevice testbed_default(EventQueue& queue);

  // --- Execution ----------------------------------------------------------
  void submit(const CpuWork& work, CompletionCallback on_complete);
  [[nodiscard]] bool busy() const { return active_.has_value(); }
  [[nodiscard]] std::size_t queued() const { return fifo_.size(); }
  [[nodiscard]] Seconds predict_duration(const CpuWork& work) const;

  /// Enter/leave the synchronous-wait spin state.  Ignored (for power and
  /// utilization purposes) while real work is executing.
  void set_spinning(bool spinning);
  [[nodiscard]] bool spinning() const { return spinning_; }

  // --- DVFS ---------------------------------------------------------------
  void set_level(std::size_t level);
  [[nodiscard]] std::size_t level() const { return domain_.level(); }
  [[nodiscard]] Megahertz frequency() const { return domain_.frequency(); }
  [[nodiscard]] const DvfsTable& table() const { return domain_.table(); }
  [[nodiscard]] std::uint64_t frequency_transitions() const { return domain_.transitions(); }

  // --- Monitoring ---------------------------------------------------------
  /// Instantaneous package utilization in [0, 1].
  [[nodiscard]] double utilization_now() const;
  [[nodiscard]] CpuActivityCounters counters();
  [[nodiscard]] Joules energy();
  /// Energy consumed while in the spin state (used by the Fig. 6c
  /// CPU-throttling emulation: that energy is what an asynchronous stack
  /// could have spent at the lowest P-state instead).
  [[nodiscard]] Joules spin_energy();
  [[nodiscard]] Watts power_now() const;
  /// CPU-side power if idle at the given level (board power included).
  [[nodiscard]] Watts idle_power(std::size_t at_level) const;
  /// CPU-side power at the given level and package utilization (used by the
  /// Fig. 6c throttling emulation to price the spin loop at the lowest
  /// P-state).
  [[nodiscard]] Watts power_at(std::size_t at_level, double utilization) const;

  [[nodiscard]] const CpuSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t tasks_completed() const { return tasks_completed_; }

  /// Serialize the package's accounting state (P-state, transition count,
  /// utilization/energy/spin integrals, completion counter).  Only legal at
  /// a quiescent instant: idle, not spinning, empty FIFO.
  void save(common::SnapshotWriter& w);
  /// Counterpart of save(); the device must be idle and built from the same
  /// spec/table (configuration is not serialized).
  void load(common::SnapshotReader& r);

 private:
  struct Active {
    CpuWork work;
    double units_done{0.0};
    CompletionCallback on_complete;
  };

  void account();
  [[nodiscard]] Seconds unit_time(const CpuWork& w) const;
  [[nodiscard]] int effective_cores(const CpuWork& w) const;
  void start_next_if_idle();
  void schedule_completion();
  void on_completion_event();

  EventQueue& queue_;
  CpuSpec spec_;
  FreqDomain domain_;

  std::deque<Active> fifo_;
  std::optional<Active> active_;
  EventHandle completion_;
  bool spinning_{false};

  Seconds last_account_{0.0};
  CpuActivityCounters counters_{};
  EnergyIntegrator energy_{};
  Joules spin_energy_{0.0};
  std::uint64_t tasks_completed_{0};
};

}  // namespace gg::sim
