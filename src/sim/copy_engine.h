// Simulated DMA copy engine: one per GPU, a FIFO of H2D/D2H transfers that
// advance in simulated time concurrently with kernel execution.
//
// The GeForce 8800 exposes a single DMA engine shared by both transfer
// directions, so H2D and D2H serialize against each other but overlap freely
// with the SM array.  Transfer duration comes from the platform's BusSpec
// (latency + bytes/bandwidth) and is fixed at issue: the bus has no DVFS
// domain, so no mid-transfer rescheduling is needed.
//
// Accounting mirrors GpuDevice: piecewise-constant busy/overlap integrals
// advanced before every state mutation.  The overlap integral
// (∫ copy_busy · gpu_busy dt) is exact because the owning GpuDevice invokes
// this engine's account() from the top of its own account() — every instant
// either device changes state, both integrals are brought up to now first.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "src/sim/event_queue.h"
#include "src/sim/specs.h"

namespace gg::sim {

class GpuDevice;

/// Cumulative activity counters, differenced by CopyEngineSampler the same
/// way GpuUtilSampler differences GpuActivityCounters.
struct CopyEngineCounters {
  /// Total time a transfer was in flight (seconds).
  double busy_integral{0.0};
  /// Time a transfer was in flight WHILE the GPU executed a kernel: the
  /// overlap the asynchronous stack wins back (seconds).
  double overlap_integral{0.0};
  /// Simulated bytes moved by completed transfers.
  double bytes_moved{0.0};
  std::uint64_t transfers_completed{0};
  /// Deepest the FIFO ever got (active transfer included).
  std::uint64_t peak_queue_depth{0};
};

class CopyEngine {
 public:
  using CompletionCallback = std::function<void()>;

  /// Binds to the queue, the bus timing model and the GPU whose kernel
  /// activity defines overlap.  Registers itself as the GPU's activity
  /// listener so both integrals advance in lockstep.
  CopyEngine(EventQueue& queue, BusSpec bus, GpuDevice& gpu);

  CopyEngine(const CopyEngine&) = delete;
  CopyEngine& operator=(const CopyEngine&) = delete;

  /// Enqueue a transfer of `bytes` simulated bytes; FIFO order.
  /// `on_complete` fires at the simulated completion instant.
  void submit(double bytes, CompletionCallback on_complete);

  [[nodiscard]] bool busy() const { return active_; }
  [[nodiscard]] std::size_t queued() const { return fifo_.size(); }
  [[nodiscard]] const BusSpec& bus() const { return bus_; }

  /// Counters valid as of queue.now(); advances internal accounting first.
  CopyEngineCounters counters();

  /// Integrate busy/overlap from the last accounting instant to queue.now().
  /// Reads the GPU's busy flag but never calls back into it.
  void account();

  /// Serialize the accounting state.  Only legal when quiescent (no active
  /// transfer, empty FIFO).
  void save(common::SnapshotWriter& w);
  void load(common::SnapshotReader& r);

 private:
  struct Transfer {
    double bytes{0.0};
    CompletionCallback on_complete;
  };

  void start_next_if_idle();
  void on_completion_event();

  EventQueue& queue_;
  BusSpec bus_;
  GpuDevice* gpu_;

  std::deque<Transfer> fifo_;
  bool active_{false};
  Transfer current_{};

  Seconds last_account_{0.0};
  CopyEngineCounters counters_{};
};

}  // namespace gg::sim
