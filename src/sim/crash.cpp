#include "src/sim/crash.h"

#include <stdexcept>

namespace gg::sim {

CrashSpec parse_crash_spec(std::string_view spec) {
  CrashSpec out;
  std::string_view name = spec;
  if (const auto colon = spec.find(':'); colon != std::string_view::npos) {
    name = spec.substr(0, colon);
    const std::string count(spec.substr(colon + 1));
    std::size_t used = 0;
    unsigned long long nth = 0;
    try {
      nth = std::stoull(count, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != count.size() || nth == 0) {
      throw std::invalid_argument("--crash-at: hit count '" + count +
                                  "' must be a positive integer");
    }
    out.nth = nth;
  }
  out.point = common::kill_point_from_string(name);  // throws with valid names
  return out;
}

}  // namespace gg::sim
