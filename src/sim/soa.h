// Structure-of-arrays kernels over campaign cells.
//
// The batch campaign engine gathers per-cell scalars (energies, times) into
// contiguous arrays and finalizes savings with these element-independent
// loops.  The scalar path calls the same kernels with n == 1, so the two
// engines are bit-identical by construction: every division and subtraction
// happens in the same IEEE-754 order on the same operands.
//
// Each kernel is a single pass of independent lanes — no reductions, no
// cross-lane data flow — so the compiler auto-vectorizes the plain loop.
// When the build enables GREENGPU_BATCH_SIMD (and the target has SSE2), an
// explicit 2-lane SSE2 body runs instead; packed IEEE div/sub on independent
// lanes is bit-identical to the scalar ops, and the baseline<=0 guard is a
// branch-free mask blend, so the flag changes throughput only, never bytes.
#pragma once

#include <cstddef>

#include "src/common/annotations.h"

#if defined(GREENGPU_BATCH_SIMD) && defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace gg::sim {

/// out[i] = baseline[i] > 0 ? 1 - value[i] / baseline[i] : 0
/// (the campaign's "energy saving vs baseline" per cell).
GG_HOT_BATCH inline void batch_saving_vs_baseline(const double* value,
                                                  const double* baseline,
                                                  double* out, std::size_t n) {
  std::size_t i = 0;
#if defined(GREENGPU_BATCH_SIMD) && defined(__SSE2__)
  const __m128d ones = _mm_set1_pd(1.0);
  const __m128d zeros = _mm_setzero_pd();
  for (; i + 2 <= n; i += 2) {
    const __m128d b = _mm_loadu_pd(baseline + i);
    const __m128d v = _mm_loadu_pd(value + i);
    const __m128d mask = _mm_cmpgt_pd(b, zeros);
    const __m128d saving = _mm_sub_pd(ones, _mm_div_pd(v, b));
    _mm_storeu_pd(out + i, _mm_and_pd(mask, saving));
  }
#endif
  for (; i < n; ++i) {
    out[i] = baseline[i] > 0.0 ? 1.0 - value[i] / baseline[i] : 0.0;
  }
}

/// out[i] = baseline[i] > 0 ? value[i] / baseline[i] - 1 : 0
/// (the campaign's "time delta vs baseline" per cell).
GG_HOT_BATCH inline void batch_rel_delta(const double* value, const double* baseline,
                                         double* out, std::size_t n) {
  std::size_t i = 0;
#if defined(GREENGPU_BATCH_SIMD) && defined(__SSE2__)
  const __m128d ones = _mm_set1_pd(1.0);
  const __m128d zeros = _mm_setzero_pd();
  for (; i + 2 <= n; i += 2) {
    const __m128d b = _mm_loadu_pd(baseline + i);
    const __m128d v = _mm_loadu_pd(value + i);
    const __m128d mask = _mm_cmpgt_pd(b, zeros);
    const __m128d delta = _mm_sub_pd(_mm_div_pd(v, b), ones);
    _mm_storeu_pd(out + i, _mm_and_pd(mask, delta));
  }
#endif
  for (; i < n; ++i) {
    out[i] = baseline[i] > 0.0 ? value[i] / baseline[i] - 1.0 : 0.0;
  }
}

}  // namespace gg::sim
