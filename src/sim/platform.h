// Aggregate GPU-CPU heterogeneous platform (Figure 3's lower half, plus the
// two Wattsup meters of Figure 4).
#pragma once

#include <memory>
#include <vector>

#include "src/sim/copy_engine.h"
#include "src/sim/cpu_device.h"
#include "src/sim/event_queue.h"
#include "src/sim/fault.h"
#include "src/sim/gpu_device.h"
#include "src/sim/specs.h"

namespace gg::sim {

/// Energies of both meters at an instant; used to attribute energy to
/// iterations and experiment phases by differencing.
struct EnergySnapshot {
  Seconds time{0.0};
  Joules gpu{0.0};  // meter 2: all GPU cards via their own ATX supply
  Joules cpu{0.0};  // meter 1: CPU + motherboard + disk + main memory
  /// Per-card energies (size = gpu_count; sums to `gpu`).
  std::vector<Joules> per_gpu;
  [[nodiscard]] Joules total() const { return gpu + cpu; }
};

/// Difference of two snapshots.
struct EnergyDelta {
  Seconds elapsed{0.0};
  Joules gpu{0.0};
  Joules cpu{0.0};
  [[nodiscard]] Joules total() const { return gpu + cpu; }
};

class Platform {
 public:
  /// Construct the paper's testbed: GeForce 8800 GTX cards (frequencies
  /// start at the lowest levels — the driver default) + Phenom II X2 at the
  /// peak P-state.  `gpu_count` > 1 models the multi-GPU configuration the
  /// paper's application structure anticipates ("one pthread for one GPU").
  explicit Platform(std::size_t gpu_count = 1);

  Platform(GpuSpec gpu_spec, DvfsTable gpu_core, DvfsTable gpu_mem,
           std::size_t gpu_core_level, std::size_t gpu_mem_level, CpuSpec cpu_spec,
           DvfsTable cpu_table, std::size_t cpu_level, BusSpec bus = BusSpec{},
           std::size_t gpu_count = 1);

  [[nodiscard]] EventQueue& queue() { return queue_; }
  /// The first (or only) GPU.
  [[nodiscard]] GpuDevice& gpu() { return *gpus_.front(); }
  [[nodiscard]] GpuDevice& gpu(std::size_t index) { return *gpus_.at(index); }
  [[nodiscard]] std::size_t gpu_count() const { return gpus_.size(); }
  [[nodiscard]] CpuDevice& cpu() { return *cpu_; }
  /// The DMA copy engine paired with gpu(index); transfers submitted here
  /// advance concurrently with that GPU's kernel FIFO.
  [[nodiscard]] CopyEngine& copy_engine(std::size_t index = 0) {
    return *copy_engines_.at(index);
  }
  [[nodiscard]] const BusSpec& bus() const { return bus_; }
  [[nodiscard]] Seconds now() const { return queue_.now(); }

  /// Current meter readings (advances internal accounting to now()).
  [[nodiscard]] EnergySnapshot snapshot();
  [[nodiscard]] static EnergyDelta delta(const EnergySnapshot& a, const EnergySnapshot& b);

  /// Combined idle power of both meters with every domain at the given
  /// levels; the paper's "idle energy" baseline for dynamic-energy numbers
  /// uses the peak levels.
  [[nodiscard]] Watts idle_power_at_peak();

  /// Install a seeded fault injector over this platform's devices (replacing
  /// any previous one) and start its episode scheduling.  The cudalite
  /// facades consult `faults()` on every monitoring read, clock write and
  /// launch; with no injector installed they behave perfectly.
  FaultInjector& install_faults(const FaultConfig& config);
  [[nodiscard]] FaultInjector* faults() { return faults_.get(); }
  [[nodiscard]] const FaultInjector* faults() const { return faults_.get(); }

  /// Serialize the whole platform's accounting state (virtual clock plus
  /// every device's levels/integrals/counters).  Only legal at a quiescent
  /// instant — all devices idle — and before any fault injector is
  /// installed (the injector's episode events cannot be captured).  Pending
  /// periodic controller ticks are NOT captured; callers re-arm them at
  /// their saved phase (see GpuFrequencyScaler::attach_at).
  void save(common::SnapshotWriter& w);
  /// Counterpart of save(): restores into a platform built with the same
  /// configuration whose event queue is drained.
  void load(common::SnapshotReader& r);

 private:
  EventQueue queue_;
  // unique_ptr: devices hold a reference to queue_ and are not movable.
  std::vector<std::unique_ptr<GpuDevice>> gpus_;
  // Declared after gpus_: each engine is its GPU's activity listener, so it
  // must be destroyed first (listeners never fire during destruction, but
  // the ordering keeps the dangling window inert).
  std::vector<std::unique_ptr<CopyEngine>> copy_engines_;
  std::unique_ptr<CpuDevice> cpu_;
  BusSpec bus_;
  std::unique_ptr<FaultInjector> faults_;
};

}  // namespace gg::sim
