#include "src/sim/power_meter.h"

#include <stdexcept>

namespace gg::sim {

void EnergyIntegrator::advance(Seconds now, Watts power_since_last) {
  if (now < last_) throw std::invalid_argument("EnergyIntegrator: time went backwards");
  energy_ += power_since_last * (now - last_);
  last_ = now;
}

void PowerMeter::advance(Seconds now, Watts power_since_last) {
  Seconds t = integrator_.last_time();
  if (now < t) throw std::invalid_argument("PowerMeter: time went backwards");
  // Split the interval at sample-window boundaries so each emitted sample is
  // the true average power over its window.
  while (window_start_ + sample_interval_ <= now) {
    const Seconds boundary = window_start_ + sample_interval_;
    window_energy_ += power_since_last * (boundary - t);
    samples_.push_back(MeterSample{boundary, window_energy_ / sample_interval_});
    window_energy_ = Joules{0.0};
    window_start_ = boundary;
    t = boundary;
  }
  window_energy_ += power_since_last * (now - t);
  integrator_.advance(now, power_since_last);
}

void PowerMeter::reset(Seconds now) {
  integrator_.reset(now);
  window_start_ = now;
  window_energy_ = Joules{0.0};
  samples_.clear();
}

}  // namespace gg::sim
