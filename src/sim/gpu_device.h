// Simulated GPU device: SM array + memory controller with independent
// frequency domains, FIFO kernel execution, exact utilization accounting and
// power integration.
//
// Execution model (three-term roofline): a kernel consists of `units`
// identical work units; each unit needs `core_cycles_per_unit` aggregate
// SP-cycles, `mem_bytes_per_unit` DRAM bytes, and a frequency-independent
// `overhead_per_unit` of pipelined serialization (launch latency, dependency
// stalls, host round trips).  All three streams overlap:
//
//   t_unit = max(core_cycles / core_throughput(f_core),
//                mem_bytes   / mem_bandwidth(f_mem),
//                overhead)
//
// While a kernel runs, instantaneous utilizations follow Nvidia's
// definitions (core util = busy cycles / total cycles, memory util = achieved
// bandwidth / peak bandwidth at the current clock):
//
//   u_core = t_core_unit / t_unit,   u_mem = t_mem_unit / t_unit
//
// This is the physics behind the paper's observation 1 (Section III-A): a
// component with utilization u has 1-u of frequency slack, so throttling it
// until its stream reaches the critical path costs no time while saving
// clock power.  Throttling past the slack point makes that stream dominant
// and execution time grows as 1/f — the knees of Fig. 1.
//
// Work depletes linearly in time under the current frequencies, so execution
// under mid-kernel DVFS transitions is exact (piecewise-linear progress).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "src/sim/dvfs.h"
#include "src/sim/event_queue.h"
#include "src/sim/power_meter.h"
#include "src/sim/specs.h"

namespace gg::sim {

/// Work description for one kernel launch.
struct KernelWork {
  /// Number of divisible work units; must be > 0.
  double units{1.0};
  /// Aggregate SP-cycles required per unit (across all SPs).
  double core_cycles_per_unit{0.0};
  /// DRAM traffic per unit, bytes.
  double mem_bytes_per_unit{0.0};
  /// Frequency-independent serialization time per unit.
  Seconds overhead_per_unit{0.0};
};

/// Cumulative activity counters, used by the NVML-style sampler to compute
/// windowed utilizations by differencing.
struct GpuActivityCounters {
  /// Integral of instantaneous core utilization over time (seconds).
  double core_util_integral{0.0};
  /// Integral of instantaneous memory utilization over time (seconds).
  double mem_util_integral{0.0};
  /// Total time the device was executing a kernel (seconds).
  double busy_integral{0.0};
};

class GpuDevice {
 public:
  using CompletionCallback = std::function<void()>;

  GpuDevice(EventQueue& queue, GpuSpec spec, DvfsTable core_table, DvfsTable mem_table,
            std::size_t initial_core_level, std::size_t initial_mem_level);

  /// Convenience: the paper's testbed GPU with both domains at the lowest
  /// levels (the driver default the Fig. 5 experiment starts from).
  static GpuDevice testbed_default(EventQueue& queue);

  // --- Execution ---------------------------------------------------------
  /// Enqueue a kernel; runs FIFO (the 8800/CUDA 3.2 stack has no concurrent
  /// kernels).  `on_complete` fires at the simulated completion instant.
  void submit(const KernelWork& work, CompletionCallback on_complete);

  [[nodiscard]] bool busy() const { return active_.has_value(); }
  [[nodiscard]] std::size_t queued() const { return fifo_.size(); }

  /// Predicted duration of `work` if started now at current frequencies and
  /// run to completion without DVFS transitions.
  [[nodiscard]] Seconds predict_duration(const KernelWork& work) const;

  // --- Frequency control (nvidia-settings equivalent) --------------------
  void set_core_level(std::size_t level);
  void set_mem_level(std::size_t level);
  [[nodiscard]] std::size_t core_level() const { return core_.level(); }
  [[nodiscard]] std::size_t mem_level() const { return mem_.level(); }
  [[nodiscard]] Megahertz core_frequency() const { return core_.frequency(); }
  [[nodiscard]] Megahertz mem_frequency() const { return mem_.frequency(); }
  [[nodiscard]] const DvfsTable& core_table() const { return core_.table(); }
  [[nodiscard]] const DvfsTable& mem_table() const { return mem_.table(); }
  [[nodiscard]] std::uint64_t frequency_transitions() const {
    return core_.transitions() + mem_.transitions();
  }

  // --- Monitoring ---------------------------------------------------------
  /// Instantaneous utilizations (0 when idle).
  [[nodiscard]] double core_utilization_now() const;
  [[nodiscard]] double mem_utilization_now() const;

  /// Counters valid as of queue.now(); advances internal accounting first.
  [[nodiscard]] GpuActivityCounters counters();

  /// Card energy consumed so far (meter 2 equivalent).
  [[nodiscard]] Joules energy();
  /// Instantaneous card power.
  [[nodiscard]] Watts power_now() const;

  /// Card power if the device were idle at the given levels (used for the
  /// paper's dynamic-energy accounting).
  [[nodiscard]] Watts idle_power(std::size_t core_level, std::size_t mem_level) const;

  [[nodiscard]] const GpuSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t kernels_completed() const { return kernels_completed_; }

  /// Install a hook invoked at the top of every account() call, BEFORE this
  /// device integrates or mutates state.  The DMA copy engine registers its
  /// own account() here so its overlap integral (∫ copy_busy · gpu_busy dt)
  /// is advanced under the pre-change busy flag at every instant the GPU
  /// changes state — making the overlap accounting exact.  The listener must
  /// only read this device's state, never call back into it.
  void set_activity_listener(std::function<void()> listener) {
    activity_listener_ = std::move(listener);
  }

  /// Serialize the device's accounting state (clock levels, transition
  /// counts, utilization/energy integrals, completion counter).  Only legal
  /// at a quiescent instant: no active kernel, empty FIFO.  A restored
  /// device continues the exact piecewise integration bit-for-bit.
  void save(common::SnapshotWriter& w);
  /// Counterpart of save(); the device must be idle and built from the same
  /// spec/tables (configuration is not serialized).
  void load(common::SnapshotReader& r);

 private:
  struct Active {
    KernelWork work;
    double units_done{0.0};
    CompletionCallback on_complete;
  };

  /// Integrate energy/utilization/progress from the last accounting instant
  /// to queue.now().  Must be called before any state mutation.
  void account();

  /// Time one unit of the active kernel takes at current frequencies.
  [[nodiscard]] Seconds unit_time(const KernelWork& w) const;
  [[nodiscard]] double unit_core_fraction(const KernelWork& w) const;
  [[nodiscard]] double unit_mem_fraction(const KernelWork& w) const;

  void start_next_if_idle();
  void schedule_completion();
  void on_completion_event();

  EventQueue& queue_;
  GpuSpec spec_;
  FreqDomain core_;
  FreqDomain mem_;

  std::deque<Active> fifo_;
  std::optional<Active> active_;
  EventHandle completion_;
  std::function<void()> activity_listener_;

  Seconds last_account_{0.0};
  GpuActivityCounters counters_{};
  EnergyIntegrator energy_{};
  std::uint64_t kernels_completed_{0};
};

}  // namespace gg::sim
