// Periodic platform trace recorder (frequencies, utilizations, power).
//
// Used to regenerate the paper's time-series figures (Fig. 5 traces) and for
// debugging controller behaviour.  Attach to a platform and it samples at a
// fixed period via the event queue until detached or the queue drains.
#pragma once

#include <ostream>
#include <vector>

#include "src/sim/monitor.h"
#include "src/sim/platform.h"

namespace gg::sim {

struct TraceSample {
  Seconds time{0.0};
  Megahertz gpu_core_freq{0.0};
  Megahertz gpu_mem_freq{0.0};
  Megahertz cpu_freq{0.0};
  double gpu_core_util{0.0};  // averaged over the sample window
  double gpu_mem_util{0.0};
  double cpu_util{0.0};
  Watts gpu_power{0.0};  // window-average (from meter energy delta)
  Watts cpu_power{0.0};
};

class TraceRecorder {
 public:
  /// Starts sampling immediately; the first sample lands at now + period.
  TraceRecorder(Platform& platform, Seconds period);
  ~TraceRecorder() { stop(); }

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Stop scheduling further samples.
  void stop();

  [[nodiscard]] const std::vector<TraceSample>& samples() const { return samples_; }

  /// Dump all samples as CSV with a header row.
  void write_csv(std::ostream& os) const;

 private:
  void take_sample();
  void arm();

  Platform* platform_;
  Seconds period_;
  GpuUtilSampler gpu_sampler_;
  CpuUtilSampler cpu_sampler_;
  EnergySnapshot last_energy_;
  EventHandle next_;
  bool stopped_{false};
  std::vector<TraceSample> samples_;
};

}  // namespace gg::sim
