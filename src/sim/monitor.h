// Windowed utilization sampling, nvidia-smi / /proc/stat style.
//
// Both GreenGPU tiers consume utilizations averaged over the interval since
// the previous sample, exactly how `nvidia-smi` and the ondemand governor
// observe the hardware.  Samplers difference the devices' cumulative activity
// counters.
#pragma once

#include "src/sim/copy_engine.h"
#include "src/sim/cpu_device.h"
#include "src/sim/gpu_device.h"

namespace gg::sim {

/// GPU core + memory utilizations over one sampling window.
struct GpuUtilization {
  double core{0.0};
  double memory{0.0};
};

class GpuUtilSampler {
 public:
  explicit GpuUtilSampler(GpuDevice& gpu, EventQueue& queue)
      : gpu_(&gpu), queue_(&queue), last_(gpu.counters()), last_time_(queue.now()) {}

  /// Average utilizations since the previous call (or construction).
  /// Returns zeros for an empty window.
  GpuUtilization sample() {
    const GpuActivityCounters now = gpu_->counters();
    const Seconds t = queue_->now();
    const double dt = (t - last_time_).get();
    GpuUtilization u;
    if (dt > 0.0) {
      u.core = (now.core_util_integral - last_.core_util_integral) / dt;
      u.memory = (now.mem_util_integral - last_.mem_util_integral) / dt;
    }
    last_ = now;
    last_time_ = t;
    return u;
  }

  /// Serialize the windowed-differencing state so a restored sampler
  /// averages over the exact window the saved one would have used.
  void save(common::SnapshotWriter& w) const {
    w.f64(last_.core_util_integral);
    w.f64(last_.mem_util_integral);
    w.f64(last_.busy_integral);
    w.f64(last_time_.get());
  }
  void load(common::SnapshotReader& r) {
    last_.core_util_integral = r.f64();
    last_.mem_util_integral = r.f64();
    last_.busy_integral = r.f64();
    last_time_ = Seconds{r.f64()};
  }

 private:
  GpuDevice* gpu_;
  EventQueue* queue_;
  GpuActivityCounters last_;
  Seconds last_time_;
};

/// Copy-engine activity over one sampling window: `busy` is the fraction of
/// the window a DMA transfer was in flight, `overlap` the fraction where the
/// transfer ran concurrently with a kernel (overlap <= busy).
struct CopyEngineUtilization {
  double busy{0.0};
  double overlap{0.0};
};

class CopyEngineSampler {
 public:
  explicit CopyEngineSampler(CopyEngine& engine, EventQueue& queue)
      : engine_(&engine), queue_(&queue), last_(engine.counters()),
        last_time_(queue.now()) {}

  /// Average busy/overlap fractions since the previous call (or
  /// construction).  Returns zeros for an empty window.
  CopyEngineUtilization sample() {
    const CopyEngineCounters now = engine_->counters();
    const Seconds t = queue_->now();
    const double dt = (t - last_time_).get();
    CopyEngineUtilization u;
    if (dt > 0.0) {
      u.busy = (now.busy_integral - last_.busy_integral) / dt;
      u.overlap = (now.overlap_integral - last_.overlap_integral) / dt;
    }
    last_ = now;
    last_time_ = t;
    return u;
  }

  /// Serialize the windowed-differencing state (see GpuUtilSampler::save).
  void save(common::SnapshotWriter& w) const {
    w.f64(last_.busy_integral);
    w.f64(last_.overlap_integral);
    w.f64(last_.bytes_moved);
    w.u64(last_.transfers_completed);
    w.u64(last_.peak_queue_depth);
    w.f64(last_time_.get());
  }
  void load(common::SnapshotReader& r) {
    last_.busy_integral = r.f64();
    last_.overlap_integral = r.f64();
    last_.bytes_moved = r.f64();
    last_.transfers_completed = r.u64();
    last_.peak_queue_depth = r.u64();
    last_time_ = Seconds{r.f64()};
  }

 private:
  CopyEngine* engine_;
  EventQueue* queue_;
  CopyEngineCounters last_;
  Seconds last_time_;
};

class CpuUtilSampler {
 public:
  explicit CpuUtilSampler(CpuDevice& cpu, EventQueue& queue)
      : cpu_(&cpu), queue_(&queue), last_(cpu.counters()), last_time_(queue.now()) {}

  /// Average package utilization in [0, 1] since the previous call.
  double sample() {
    const CpuActivityCounters now = cpu_->counters();
    const Seconds t = queue_->now();
    const double dt = (t - last_time_).get();
    double u = 0.0;
    if (dt > 0.0) u = (now.util_integral - last_.util_integral) / dt;
    last_ = now;
    last_time_ = t;
    return u;
  }

  /// Serialize the windowed-differencing state (see GpuUtilSampler::save).
  void save(common::SnapshotWriter& w) const {
    w.f64(last_.util_integral);
    w.f64(last_.busy_integral);
    w.f64(last_.spin_integral);
    w.f64(last_time_.get());
  }
  void load(common::SnapshotReader& r) {
    last_.util_integral = r.f64();
    last_.busy_integral = r.f64();
    last_.spin_integral = r.f64();
    last_time_ = Seconds{r.f64()};
  }

 private:
  CpuDevice* cpu_;
  EventQueue* queue_;
  CpuActivityCounters last_;
  Seconds last_time_;
};

}  // namespace gg::sim
