#include "src/sim/dvfs.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace gg::sim {

DvfsTable::DvfsTable(std::vector<OperatingPoint> points) : points_(std::move(points)) {
  if (points_.empty()) throw std::invalid_argument("DvfsTable: no operating points");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].frequency >= points_[i - 1].frequency) {
      throw std::invalid_argument("DvfsTable: frequencies must strictly descend");
    }
  }
  for (const auto& p : points_) {
    if (p.frequency.get() <= 0.0 || p.voltage <= 0.0) {
      throw std::invalid_argument("DvfsTable: non-positive operating point");
    }
  }
}

const OperatingPoint& DvfsTable::point(std::size_t level) const {
  if (level >= points_.size()) throw std::out_of_range("DvfsTable: level out of range");
  return points_[level];
}

std::size_t DvfsTable::nearest_level(Megahertz f) const {
  std::size_t best = 0;
  double best_dist = std::fabs(points_[0].frequency.get() - f.get());
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double d = std::fabs(points_[i].frequency.get() - f.get());
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

double DvfsTable::range_fraction(std::size_t level) const {
  const double peak_f = peak().get();
  const double floor_f = floor().get();
  if (points_.size() == 1) return 1.0;
  return (frequency(level).get() - floor_f) / (peak_f - floor_f);
}

FreqDomain::FreqDomain(std::string name, DvfsTable table, std::size_t initial_level)
    : name_(std::move(name)), table_(std::move(table)), level_(initial_level) {
  if (initial_level >= table_.levels()) {
    throw std::out_of_range("FreqDomain: initial level out of range");
  }
}

bool FreqDomain::set_level(std::size_t level) {
  if (level >= table_.levels()) throw std::out_of_range("FreqDomain: level out of range");
  if (level == level_) return false;
  level_ = level;
  ++transitions_;
  return true;
}

DvfsTable geforce8800_core_table() {
  using namespace literals;
  // Six near-equally spaced levels across the 8800 GTX core dynamic range.
  return DvfsTable{{
      {576_MHz, 1.0},
      {521_MHz, 1.0},
      {466_MHz, 1.0},
      {410_MHz, 1.0},
      {355_MHz, 1.0},
      {300_MHz, 1.0},
  }};
}

DvfsTable geforce8800_memory_table() {
  using namespace literals;
  return DvfsTable{{
      {900_MHz, 1.0},
      {820_MHz, 1.0},
      {740_MHz, 1.0},
      {660_MHz, 1.0},
      {580_MHz, 1.0},
      {500_MHz, 1.0},
  }};
}

DvfsTable phenom2_table() {
  using namespace literals;
  // Voltages approximate the Phenom II X2 550 P-state ladder.
  return DvfsTable{{
      {2800_MHz, 1.400},
      {2100_MHz, 1.250},
      {1300_MHz, 1.125},
      {800_MHz, 1.050},
  }};
}

}  // namespace gg::sim
