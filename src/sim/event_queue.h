// Discrete-event simulation core.
//
// The GreenGPU platform is modelled as a discrete-event system: kernel
// completions, DVFS controller invocations, power-meter samples and division
// decisions are all events on a single queue.  The queue provides stable FIFO
// ordering for events scheduled at the same timestamp and cheap cancellation
// (needed when a frequency change reschedules an in-flight kernel completion).
//
// This is the simulator's hottest path, so it avoids per-event allocation:
// callbacks are stored inline (InlineAction) and handle state lives in a
// pooled slab of recycled slots instead of one shared_ptr per event.
// Cancellation stays lazy, but when cancelled entries outnumber live ones
// the heap is compacted in one pass — DVFS-driven rescheduling cancels
// constantly, and without compaction long runs drag dead entries through
// every sift.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/inline_function.h"
#include "src/common/thread_checker.h"
#include "src/common/units.h"

namespace gg::common {
class SnapshotWriter;
class SnapshotReader;
}  // namespace gg::common

namespace gg::sim {

namespace detail {

/// Recycled per-event handle state.  A slot stays allocated while the heap
/// entry exists or any EventHandle still points at it, so outcome flags
/// survive exactly as long as someone can ask about them.
struct EventSlab {
  static constexpr std::uint32_t kNone = ~std::uint32_t{0};

  struct Slot {
    std::uint32_t handle_refs{0};
    std::uint32_t next_free{kNone};
    bool in_heap{false};
    bool cancelled{false};
    bool fired{false};
  };

  std::vector<Slot> slots;
  std::uint32_t free_head{kNone};
  /// Cancelled entries still sitting in the heap (drives compaction).
  std::size_t cancelled_in_heap{0};

  GG_HOT std::uint32_t acquire() {
    if (free_head == kNone) {
      // GG_LINT_ALLOW(hot-alloc): slab grows amortized to the run's peak
      // in-flight event count, then recycles slots forever.
      slots.push_back(Slot{0, kNone, true, false, false});
      return static_cast<std::uint32_t>(slots.size() - 1);
    }
    const std::uint32_t idx = free_head;
    Slot& s = slots[idx];
    free_head = s.next_free;
    s = Slot{0, kNone, true, false, false};
    return idx;
  }

  void release_if_unused(std::uint32_t idx) {
    Slot& s = slots[idx];
    if (s.handle_refs == 0 && !s.in_heap) {
      s.next_free = free_head;
      free_head = idx;
    }
  }
};

}  // namespace detail

/// Handle to a scheduled event; allows cancellation.  Copies share state.
class EventHandle {
 public:
  EventHandle() = default;

  EventHandle(const EventHandle& other) : slab_(other.slab_), idx_(other.idx_) {
    if (slab_) ++slab_->slots[idx_].handle_refs;
  }

  EventHandle(EventHandle&& other) noexcept
      : slab_(std::move(other.slab_)), idx_(other.idx_) {
    other.idx_ = detail::EventSlab::kNone;
  }

  EventHandle& operator=(const EventHandle& other) {
    if (this != &other) {
      EventHandle copy(other);
      *this = std::move(copy);
    }
    return *this;
  }

  EventHandle& operator=(EventHandle&& other) noexcept {
    if (this != &other) {
      detach();
      slab_ = std::move(other.slab_);
      idx_ = other.idx_;
      other.idx_ = detail::EventSlab::kNone;
    }
    return *this;
  }

  ~EventHandle() { detach(); }

  /// Cancel the event if it has not fired yet.  Safe to call repeatedly and
  /// on default-constructed handles.
  void cancel() {
    if (!slab_) return;
    auto& s = slab_->slots[idx_];
    if (s.fired || s.cancelled) return;
    s.cancelled = true;
    if (s.in_heap) ++slab_->cancelled_in_heap;
  }

  [[nodiscard]] bool valid() const { return slab_ != nullptr; }
  [[nodiscard]] bool cancelled() const {
    return slab_ && slab_->slots[idx_].cancelled;
  }
  [[nodiscard]] bool fired() const { return slab_ && slab_->slots[idx_].fired; }
  [[nodiscard]] bool pending() const {
    if (!slab_) return false;
    const auto& s = slab_->slots[idx_];
    return !s.fired && !s.cancelled;
  }

 private:
  friend class EventQueue;
  EventHandle(std::shared_ptr<detail::EventSlab> slab, std::uint32_t idx)
      : slab_(std::move(slab)), idx_(idx) {
    ++slab_->slots[idx_].handle_refs;
  }

  void detach() {
    if (!slab_) return;
    auto& s = slab_->slots[idx_];
    --s.handle_refs;
    slab_->release_if_unused(idx_);
    slab_.reset();
    idx_ = detail::EventSlab::kNone;
  }

  std::shared_ptr<detail::EventSlab> slab_;
  std::uint32_t idx_{detail::EventSlab::kNone};
};

/// Min-heap event queue with deterministic same-time ordering (by insertion
/// sequence number).
class EventQueue {
 public:
  using Action = InlineAction<40>;

  /// Current simulated time.
  [[nodiscard]] Seconds now() const { return now_; }

  /// Schedule `action` at absolute time `when` (must be >= now()).
  EventHandle schedule_at(Seconds when, Action action);

  /// Schedule `action` `delay` from now (delay must be >= 0).
  EventHandle schedule_in(Seconds delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Run events with timestamp <= `until`, then advance the clock to `until`.
  void run_until(Seconds until);

  /// Run until the queue is empty (cancelled events do not keep it alive).
  void run_until_empty();

  /// Fire exactly one event if any is pending; returns false if none.
  bool step();

  [[nodiscard]] bool empty() const;
  /// Live (un-cancelled, un-fired) events.  O(1).
  [[nodiscard]] std::size_t pending_count() const {
    return heap_.size() - slab_->cancelled_in_heap;
  }
  /// Heap entries including lazily-deleted cancelled ones (lets tests and
  /// benchmarks observe compaction).
  [[nodiscard]] std::size_t queued_count() const { return heap_.size(); }

  /// Total events fired (for tests and microbenchmarks).
  [[nodiscard]] std::uint64_t fired_count() const { return fired_; }
  /// Times the heap was rebuilt to shed cancelled entries.
  [[nodiscard]] std::uint64_t compaction_count() const { return compactions_; }

  /// Serialize virtual time and counters.  Pending events are NOT captured
  /// (their callbacks are arbitrary closures); checkpoints are taken at
  /// quiescent points where the queue is drained, and load() enforces that.
  void save(common::SnapshotWriter& w) const;
  /// Restore clock/counters into an EMPTY queue (throws std::logic_error
  /// otherwise) so resumed runs schedule against the checkpointed clock.
  void load(common::SnapshotReader& r);

 private:
  struct Entry {
    Seconds when;
    std::uint64_t seq;
    Action action;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Below this size a full rebuild costs more than it saves.
  static constexpr std::size_t kCompactionMinSize = 64;

  /// Pop cancelled entries off the top so empty()/peek logic sees live
  /// events, and rebuild the heap outright once cancelled entries are the
  /// majority.
  void drop_cancelled() const;
  void compact() const;
  void retire_entry(const Entry& e) const;

  mutable std::vector<Entry> heap_;  // binary heap ordered by Later
  /// The queue is single-owner by contract: each simulation (campaign cell,
  /// test, bench) drives its own queue on one thread.  Armed in debug/TSan
  /// builds; compiles away in release.
  common::ThreadChecker owner_;
  std::shared_ptr<detail::EventSlab> slab_{std::make_shared<detail::EventSlab>()};
  Seconds now_{0.0};
  std::uint64_t next_seq_{0};
  std::uint64_t fired_{0};
  mutable std::uint64_t compactions_{0};
};

}  // namespace gg::sim
