// Discrete-event simulation core.
//
// The GreenGPU platform is modelled as a discrete-event system: kernel
// completions, DVFS controller invocations, power-meter samples and division
// decisions are all events on a single queue.  The queue provides stable FIFO
// ordering for events scheduled at the same timestamp and cheap cancellation
// (needed when a frequency change reschedules an in-flight kernel completion).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/common/units.h"

namespace gg::sim {

/// Handle to a scheduled event; allows cancellation.  Copies share state.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet.  Safe to call repeatedly and
  /// on default-constructed handles.
  void cancel() {
    if (state_) state_->cancelled = true;
  }

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool cancelled() const { return state_ && state_->cancelled; }
  [[nodiscard]] bool fired() const { return state_ && state_->fired; }
  [[nodiscard]] bool pending() const {
    return state_ && !state_->fired && !state_->cancelled;
  }

 private:
  friend class EventQueue;
  struct State {
    bool cancelled{false};
    bool fired{false};
  };
  std::shared_ptr<State> state_;
};

/// Min-heap event queue with deterministic same-time ordering (by insertion
/// sequence number).
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] Seconds now() const { return now_; }

  /// Schedule `action` at absolute time `when` (must be >= now()).
  EventHandle schedule_at(Seconds when, Action action);

  /// Schedule `action` `delay` from now (delay must be >= 0).
  EventHandle schedule_in(Seconds delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Run events with timestamp <= `until`, then advance the clock to `until`.
  void run_until(Seconds until);

  /// Run until the queue is empty (cancelled events do not keep it alive).
  void run_until_empty();

  /// Fire exactly one event if any is pending; returns false if none.
  bool step();

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t pending_count() const;

  /// Total events fired (for tests and microbenchmarks).
  [[nodiscard]] std::uint64_t fired_count() const { return fired_; }

 private:
  struct Entry {
    Seconds when;
    std::uint64_t seq;
    Action action;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pop cancelled entries off the top so empty()/peek logic sees live events.
  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Seconds now_{0.0};
  std::uint64_t next_seq_{0};
  std::uint64_t fired_{0};
};

}  // namespace gg::sim
