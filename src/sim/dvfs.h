// Operating points, DVFS tables and clocked frequency domains.
//
// The GeForce 8800 GTX exposes frequency-only scaling for its core and memory
// domains (no voltage scaling through nvidia-settings), while the AMD
// Phenom II CPU scales voltage together with frequency (true DVFS).  Both are
// modelled as a `FreqDomain` over a `DvfsTable` of discrete operating points;
// level 0 is always the highest frequency, matching how the paper enumerates
// levels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/snapshot.h"
#include "src/common/units.h"

namespace gg::sim {

/// One discrete frequency/voltage pair.  For frequency-only domains the
/// voltage is constant across points.
struct OperatingPoint {
  Megahertz frequency{0.0};
  double voltage{1.0};
};

/// Immutable, descending-frequency table of operating points.
class DvfsTable {
 public:
  /// Points must be non-empty and strictly descending in frequency.
  explicit DvfsTable(std::vector<OperatingPoint> points);

  [[nodiscard]] std::size_t levels() const { return points_.size(); }
  [[nodiscard]] const OperatingPoint& point(std::size_t level) const;
  [[nodiscard]] Megahertz frequency(std::size_t level) const { return point(level).frequency; }
  [[nodiscard]] double voltage(std::size_t level) const { return point(level).voltage; }

  /// Level 0: the peak frequency.
  [[nodiscard]] Megahertz peak() const { return points_.front().frequency; }
  /// The lowest available frequency.
  [[nodiscard]] Megahertz floor() const { return points_.back().frequency; }
  [[nodiscard]] std::size_t lowest_level() const { return points_.size() - 1; }

  /// Index of the table entry closest in frequency to `f`.
  [[nodiscard]] std::size_t nearest_level(Megahertz f) const;

  /// Fraction of the dynamic range covered by `level`:
  /// peak -> 1.0, floor -> 0.0, linear in frequency in between.
  /// This is the `umean` mapping of the paper (Section V-A, following [4]).
  [[nodiscard]] double range_fraction(std::size_t level) const;

 private:
  std::vector<OperatingPoint> points_;
};

/// A clock domain with a mutable current level and change statistics.
class FreqDomain {
 public:
  FreqDomain(std::string name, DvfsTable table, std::size_t initial_level = 0);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const DvfsTable& table() const { return table_; }
  [[nodiscard]] std::size_t level() const { return level_; }
  [[nodiscard]] Megahertz frequency() const { return table_.frequency(level_); }
  [[nodiscard]] double voltage() const { return table_.voltage(level_); }
  [[nodiscard]] std::size_t levels() const { return table_.levels(); }

  /// Returns true if the level actually changed.
  bool set_level(std::size_t level);

  /// Number of set_level calls that changed the level (actuation cost proxy).
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }

  /// Serialize the mutable state (current level + transition count); the
  /// table itself is configuration and must match at load time.
  void save(common::SnapshotWriter& w) const {
    w.u64(level_);
    w.u64(transitions_);
  }
  void load(common::SnapshotReader& r) {
    const auto level = static_cast<std::size_t>(r.u64());
    if (level >= table_.levels()) {
      throw common::SnapshotError("FreqDomain::load: level out of range for " + name_);
    }
    level_ = level;
    transitions_ = r.u64();
  }

 private:
  std::string name_;
  DvfsTable table_;
  std::size_t level_;
  std::uint64_t transitions_{0};
};

/// Factory: the six GeForce 8800 GTX core levels used in the paper's testbed
/// (equally spaced across the dynamic range; includes the 410 MHz knee the
/// paper cites for streamcluster): 576, 521, 466, 410, 355, 300 MHz.
[[nodiscard]] DvfsTable geforce8800_core_table();

/// Factory: the six GeForce 8800 GTX memory levels quoted in Section VI:
/// 900, 820, 740, 660, 580, 500 MHz.
[[nodiscard]] DvfsTable geforce8800_memory_table();

/// Factory: AMD Phenom II X2 P-states from Section VI (2.8 GHz, 2.1 GHz,
/// 1.3 GHz, 800 MHz) with representative core voltages.
[[nodiscard]] DvfsTable phenom2_table();

}  // namespace gg::sim
