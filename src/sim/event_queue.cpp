#include "src/sim/event_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/common/annotations.h"
#include "src/common/snapshot.h"

namespace gg::sim {

GG_HOT EventHandle EventQueue::schedule_at(Seconds when, Action action) {
  owner_.assert_owner("sim::EventQueue");
  if (when < now_) throw std::invalid_argument("EventQueue: schedule in the past");
  if (!action) throw std::invalid_argument("EventQueue: empty action");
  const std::uint32_t slot = slab_->acquire();
  // GG_LINT_ALLOW(hot-alloc): heap storage grows amortized to the run's
  // peak pending-event count; steady-state pushes reuse capacity.
  heap_.push_back(Entry{when, next_seq_++, std::move(action), slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return EventHandle{slab_, slot};
}

void EventQueue::retire_entry(const Entry& e) const {
  auto& s = slab_->slots[e.slot];
  s.in_heap = false;
  slab_->release_if_unused(e.slot);
}

void EventQueue::compact() const {
  auto dead = [this](const Entry& e) {
    if (!slab_->slots[e.slot].cancelled) return false;
    retire_entry(e);
    return true;
  };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), dead), heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  slab_->cancelled_in_heap = 0;
  ++compactions_;
}

void EventQueue::drop_cancelled() const {
  if (slab_->cancelled_in_heap * 2 > heap_.size() &&
      heap_.size() >= kCompactionMinSize) {
    compact();
    return;
  }
  while (!heap_.empty() && slab_->slots[heap_.front().slot].cancelled) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    retire_entry(heap_.back());
    heap_.pop_back();
    --slab_->cancelled_in_heap;
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

GG_HOT bool EventQueue::step() {
  owner_.assert_owner("sim::EventQueue");
  drop_cancelled();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  now_ = e.when;
  auto& s = slab_->slots[e.slot];
  s.fired = true;
  retire_entry(e);
  ++fired_;
  e.action();
  return true;
}

void EventQueue::run_until(Seconds until) {
  if (until < now_) throw std::invalid_argument("EventQueue: run_until in the past");
  for (;;) {
    drop_cancelled();
    if (heap_.empty() || heap_.front().when > until) break;
    step();
  }
  now_ = until;
}

void EventQueue::run_until_empty() {
  while (step()) {
  }
}

void EventQueue::save(common::SnapshotWriter& w) const {
  w.f64(now_.get());
  w.u64(next_seq_);
  w.u64(fired_);
  w.u64(compactions_);
}

void EventQueue::load(common::SnapshotReader& r) {
  if (!empty()) {
    throw std::logic_error("EventQueue: load() requires an empty queue");
  }
  now_ = Seconds{r.f64()};
  next_seq_ = r.u64();
  fired_ = r.u64();
  compactions_ = r.u64();
}

}  // namespace gg::sim
