#include "src/sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace gg::sim {

EventHandle EventQueue::schedule_at(Seconds when, Action action) {
  if (when < now_) throw std::invalid_argument("EventQueue: schedule in the past");
  if (!action) throw std::invalid_argument("EventQueue: empty action");
  EventHandle handle;
  handle.state_ = std::make_shared<EventHandle::State>();
  heap_.push(Entry{when, next_seq_++, std::move(action), handle.state_});
  return handle;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && heap_.top().state->cancelled) {
    heap_.pop();  // heap_ is mutable: lazy removal of cancelled entries
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

std::size_t EventQueue::pending_count() const {
  // heap_ may contain cancelled entries; count live ones.  O(n) but only used
  // by tests.
  auto copy = heap_;
  std::size_t n = 0;
  while (!copy.empty()) {
    if (!copy.top().state->cancelled) ++n;
    copy.pop();
  }
  return n;
}

bool EventQueue::step() {
  drop_cancelled();
  if (heap_.empty()) return false;
  Entry e = heap_.top();
  heap_.pop();
  now_ = e.when;
  e.state->fired = true;
  ++fired_;
  e.action();
  return true;
}

void EventQueue::run_until(Seconds until) {
  if (until < now_) throw std::invalid_argument("EventQueue: run_until in the past");
  for (;;) {
    drop_cancelled();
    if (heap_.empty() || heap_.top().when > until) break;
    step();
  }
  now_ = until;
}

void EventQueue::run_until_empty() {
  while (step()) {
  }
}

}  // namespace gg::sim
