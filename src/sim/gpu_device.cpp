#include "src/sim/gpu_device.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace gg::sim {

namespace {
constexpr double kUnitEpsilon = 1e-9;

void validate(const KernelWork& w) {
  if (!(w.units > 0.0)) throw std::invalid_argument("KernelWork: units must be > 0");
  if (w.core_cycles_per_unit < 0.0 || w.mem_bytes_per_unit < 0.0 ||
      w.overhead_per_unit < Seconds{0.0}) {
    throw std::invalid_argument("KernelWork: negative work component");
  }
  if (w.core_cycles_per_unit == 0.0 && w.mem_bytes_per_unit == 0.0 &&
      w.overhead_per_unit == Seconds{0.0}) {
    throw std::invalid_argument("KernelWork: kernel with zero work");
  }
}
}  // namespace

GpuDevice::GpuDevice(EventQueue& queue, GpuSpec spec, DvfsTable core_table,
                     DvfsTable mem_table, std::size_t initial_core_level,
                     std::size_t initial_mem_level)
    : queue_(queue),
      spec_(spec),
      core_("gpu_core", std::move(core_table), initial_core_level),
      mem_("gpu_mem", std::move(mem_table), initial_mem_level),
      last_account_(queue.now()) {
  energy_.reset(queue.now());
}

GpuDevice GpuDevice::testbed_default(EventQueue& queue) {
  DvfsTable core = geforce8800_core_table();
  DvfsTable mem = geforce8800_memory_table();
  const std::size_t core_low = core.lowest_level();
  const std::size_t mem_low = mem.lowest_level();
  return GpuDevice{queue, GpuSpec{}, std::move(core), std::move(mem), core_low, mem_low};
}

Seconds GpuDevice::unit_time(const KernelWork& w) const {
  const double t_core = w.core_cycles_per_unit / spec_.core_throughput(core_.frequency());
  const double t_mem = w.mem_bytes_per_unit / spec_.mem_bandwidth(mem_.frequency());
  return Seconds{std::max({t_core, t_mem, w.overhead_per_unit.get()})};
}

double GpuDevice::unit_core_fraction(const KernelWork& w) const {
  const double t_core = w.core_cycles_per_unit / spec_.core_throughput(core_.frequency());
  return t_core / unit_time(w).get();
}

double GpuDevice::unit_mem_fraction(const KernelWork& w) const {
  const double t_mem = w.mem_bytes_per_unit / spec_.mem_bandwidth(mem_.frequency());
  return t_mem / unit_time(w).get();
}

Seconds GpuDevice::predict_duration(const KernelWork& work) const {
  validate(work);
  return unit_time(work) * work.units;
}

double GpuDevice::core_utilization_now() const {
  if (!active_) return 0.0;
  return unit_core_fraction(active_->work);
}

double GpuDevice::mem_utilization_now() const {
  if (!active_) return 0.0;
  return unit_mem_fraction(active_->work);
}

Watts GpuDevice::power_now() const {
  const double fc = core_.frequency() / core_.table().peak();
  const double fm = mem_.frequency() / mem_.table().peak();
  return spec_.power(fc, core_utilization_now(), fm, mem_utilization_now());
}

Watts GpuDevice::idle_power(std::size_t core_level, std::size_t mem_level) const {
  const double fc = core_.table().frequency(core_level) / core_.table().peak();
  const double fm = mem_.table().frequency(mem_level) / mem_.table().peak();
  return spec_.power(fc, 0.0, fm, 0.0);
}

void GpuDevice::account() {
  if (activity_listener_) activity_listener_();
  const Seconds now = queue_.now();
  const Seconds dt = now - last_account_;
  if (dt <= Seconds{0.0}) {
    last_account_ = now;
    return;
  }
  energy_.advance(now, power_now());
  if (active_) {
    const double uc = unit_core_fraction(active_->work);
    const double um = unit_mem_fraction(active_->work);
    counters_.core_util_integral += uc * dt.get();
    counters_.mem_util_integral += um * dt.get();
    counters_.busy_integral += dt.get();
    active_->units_done += dt / unit_time(active_->work);
  }
  last_account_ = now;
}

GpuActivityCounters GpuDevice::counters() {
  account();
  return counters_;
}

Joules GpuDevice::energy() {
  account();
  return energy_.energy();
}

void GpuDevice::submit(const KernelWork& work, CompletionCallback on_complete) {
  validate(work);
  account();
  fifo_.push_back(Active{work, 0.0, std::move(on_complete)});
  start_next_if_idle();
}

void GpuDevice::start_next_if_idle() {
  if (active_ || fifo_.empty()) return;
  account();
  active_ = std::move(fifo_.front());
  fifo_.pop_front();
  schedule_completion();
}

void GpuDevice::schedule_completion() {
  completion_.cancel();
  const double remaining = std::max(0.0, active_->work.units - active_->units_done);
  const Seconds eta = unit_time(active_->work) * remaining;
  completion_ = queue_.schedule_in(eta, [this] { on_completion_event(); });
}

void GpuDevice::on_completion_event() {
  account();
  // Guard against floating-point drift from mid-kernel rate changes — but
  // only while the residual eta can still advance the clock.  A sub-ulp
  // remainder (short kernels late in a long run, e.g. event markers) would
  // otherwise reschedule at the same instant forever: dt stays 0, units_done
  // never moves, and the queue spins.
  if (active_->units_done < active_->work.units - kUnitEpsilon * active_->work.units) {
    const double remaining = active_->work.units - active_->units_done;
    const Seconds eta = unit_time(active_->work) * remaining;
    if ((queue_.now() + eta).get() > queue_.now().get()) {
      schedule_completion();
      return;
    }
  }
  CompletionCallback cb = std::move(active_->on_complete);
  active_.reset();
  ++kernels_completed_;
  start_next_if_idle();
  if (cb) cb();
}

void GpuDevice::set_core_level(std::size_t level) {
  account();
  if (core_.set_level(level) && active_) schedule_completion();
}

void GpuDevice::set_mem_level(std::size_t level) {
  account();
  if (mem_.set_level(level) && active_) schedule_completion();
}

void GpuDevice::save(common::SnapshotWriter& w) {
  if (active_.has_value() || !fifo_.empty()) {
    throw common::SnapshotError("GpuDevice::save: device not quiescent");
  }
  account();  // bring every integral up to queue.now() first
  core_.save(w);
  mem_.save(w);
  w.f64(last_account_.get());
  w.f64(counters_.core_util_integral);
  w.f64(counters_.mem_util_integral);
  w.f64(counters_.busy_integral);
  energy_.save(w);
  w.u64(kernels_completed_);
}

void GpuDevice::load(common::SnapshotReader& r) {
  if (active_.has_value() || !fifo_.empty()) {
    throw common::SnapshotError("GpuDevice::load: device not quiescent");
  }
  core_.load(r);
  mem_.load(r);
  last_account_ = Seconds{r.f64()};
  counters_.core_util_integral = r.f64();
  counters_.mem_util_integral = r.f64();
  counters_.busy_integral = r.f64();
  energy_.load(r);
  kernels_completed_ = r.u64();
}

}  // namespace gg::sim
