#include "src/sim/copy_engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/sim/gpu_device.h"

namespace gg::sim {

CopyEngine::CopyEngine(EventQueue& queue, BusSpec bus, GpuDevice& gpu)
    : queue_(queue), bus_(bus), gpu_(&gpu), last_account_(queue.now()) {
  gpu_->set_activity_listener([this] { account(); });
}

void CopyEngine::account() {
  const Seconds now = queue_.now();
  const Seconds dt = now - last_account_;
  if (dt <= Seconds{0.0}) {
    last_account_ = now;
    return;
  }
  if (active_) {
    counters_.busy_integral += dt.get();
    if (gpu_->busy()) counters_.overlap_integral += dt.get();
  }
  last_account_ = now;
}

CopyEngineCounters CopyEngine::counters() {
  account();
  return counters_;
}

void CopyEngine::submit(double bytes, CompletionCallback on_complete) {
  if (!(bytes >= 0.0)) {
    throw std::invalid_argument("CopyEngine: negative transfer size");
  }
  account();
  fifo_.push_back(Transfer{bytes, std::move(on_complete)});
  counters_.peak_queue_depth = std::max<std::uint64_t>(
      counters_.peak_queue_depth, fifo_.size() + (active_ ? 1 : 0));
  start_next_if_idle();
}

void CopyEngine::start_next_if_idle() {
  if (active_ || fifo_.empty()) return;
  account();
  current_ = std::move(fifo_.front());
  fifo_.pop_front();
  active_ = true;
  queue_.schedule_in(bus_.transfer_time(current_.bytes),
                     [this] { on_completion_event(); });
}

void CopyEngine::on_completion_event() {
  account();
  counters_.bytes_moved += current_.bytes;
  ++counters_.transfers_completed;
  CompletionCallback cb = std::move(current_.on_complete);
  current_ = Transfer{};
  active_ = false;
  start_next_if_idle();
  if (cb) cb();
}

void CopyEngine::save(common::SnapshotWriter& w) {
  if (active_ || !fifo_.empty()) {
    throw common::SnapshotError("CopyEngine::save: engine not quiescent");
  }
  account();
  w.f64(last_account_.get());
  w.f64(counters_.busy_integral);
  w.f64(counters_.overlap_integral);
  w.f64(counters_.bytes_moved);
  w.u64(counters_.transfers_completed);
  w.u64(counters_.peak_queue_depth);
}

void CopyEngine::load(common::SnapshotReader& r) {
  if (active_ || !fifo_.empty()) {
    throw common::SnapshotError("CopyEngine::load: engine not quiescent");
  }
  last_account_ = Seconds{r.f64()};
  counters_.busy_integral = r.f64();
  counters_.overlap_integral = r.f64();
  counters_.bytes_moved = r.f64();
  counters_.transfers_completed = r.u64();
  counters_.peak_queue_depth = r.u64();
}

}  // namespace gg::sim
