// RAII facade over the common kill-point registry (src/common/killpoint.h).
//
// PR 1's FaultInjector models a flaky *platform*; CrashInjector models a
// flaky *process*: the run dies outright at a named point — before/after a
// scaler step, inside a checkpoint write, or between finishing a campaign
// cell and journaling it — after a deterministic number of hits.  Tests arm
// it in throw mode (CrashInjected unwinds to the RecoverySupervisor); the
// CLI's --crash-at arms exit mode, which is real process death for the CI
// crash-recovery matrix.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/killpoint.h"

namespace gg::sim {

using common::CrashInjected;
using common::CrashMode;
using common::KillPoint;
using common::kCrashExitCode;

/// A parsed --crash-at specification: which point, on which hit, and how
/// many times it fires in total (shots > 1 models a persistent fault that
/// keeps crashing a supervised retry; throw mode only).
struct CrashSpec {
  KillPoint point{KillPoint::kPreScalerStep};
  std::uint64_t nth{1};
  std::uint64_t shots{1};
};

/// Parse "point" or "point:N" (e.g. "mid-checkpoint", "pre-scaler-step:3").
/// Throws std::invalid_argument naming the bad token.
[[nodiscard]] CrashSpec parse_crash_spec(std::string_view spec);

/// Arms one kill-point for its scope and disarms on destruction, so a test
/// that throws (or an EXPECT that fails) never leaves a live kill-point
/// behind for the next test.
class CrashInjector {
 public:
  CrashInjector(KillPoint point, std::uint64_t nth, CrashMode mode,
                std::uint64_t shots = 1)
      : point_(point) {
    common::arm_kill_point(point, nth, mode, shots);
  }

  explicit CrashInjector(const CrashSpec& spec, CrashMode mode = CrashMode::kThrow)
      : CrashInjector(spec.point, spec.nth, mode, spec.shots) {}

  CrashInjector(const CrashInjector&) = delete;
  CrashInjector& operator=(const CrashInjector&) = delete;

  ~CrashInjector() { common::disarm_kill_points(); }

  [[nodiscard]] KillPoint point() const { return point_; }
  /// True once the armed point has triggered (throw mode only).
  [[nodiscard]] bool fired() const { return common::kill_point_fired(); }

 private:
  KillPoint point_;
};

}  // namespace gg::sim
