// Hardware specifications (throughput and power parameters) for the modelled
// testbed: a Dell Optiplex 580 with an Nvidia GeForce 8800 GTX and an AMD
// Phenom II X2, per Section VI of the paper.
//
// The throughput figures follow the published 8800 GTX datasheet (128 stream
// processors, 384-bit GDDR3 bus at 900 MHz => 86.4 GB/s peak).  The power
// split (large frequency-proportional "clock tree" component, smaller
// activity-proportional component, no voltage scaling on the GPU) is
// calibrated so the reproduction exhibits the paper's measured shapes: modest
// total-GPU-energy savings from frequency scaling (~6 %) but large
// dynamic-energy savings (~29 %), because static card power dominates.
#pragma once

#include "src/common/units.h"

namespace gg::sim {

struct GpuSpec {
  /// Number of stream processors (8800 GTX: 16 SMs x 8 SPs).
  int sp_count{128};
  /// Peak DRAM bytes moved per memory-domain clock (86.4 GB/s at 900 MHz).
  double mem_bytes_per_clock{96.0};

  // --- Power model: P = base + core_clock*fc' + core_active*fc'*uc
  //                       + mem_clock*fm' + mem_active*fm'*um
  // with fc' = f_core/f_core_peak and fm' = f_mem/f_mem_peak.
  /// Frequency-independent card power (fans, VRM loss, PCB).
  Watts p_base{35.0};
  /// Core-domain clock-distribution power at peak core frequency.  The 8800
  /// generation spends a large share of its power in always-switching clock
  /// trees (no clock gating to speak of), which is what frequency-only
  /// throttling recovers.
  Watts p_core_clock{32.0};
  /// Core-domain activity power at peak frequency and 100 % utilization.
  Watts p_core_active{38.0};
  /// Memory-domain clock/refresh power at peak memory frequency.
  Watts p_mem_clock{20.0};
  /// Memory-domain activity power at peak frequency and 100 % utilization.
  Watts p_mem_active{20.0};

  /// Instantaneous card power for the given normalized frequencies and
  /// utilizations.  `fc_norm`/`fm_norm` are f/f_peak in (0, 1]; `uc`/`um`
  /// in [0, 1].
  [[nodiscard]] Watts power(double fc_norm, double uc, double fm_norm, double um) const {
    return p_base + p_core_clock * fc_norm + p_core_active * (fc_norm * uc) +
           p_mem_clock * fm_norm + p_mem_active * (fm_norm * um);
  }

  /// Aggregate SP-cycles per second at core frequency `f`.
  [[nodiscard]] double core_throughput(Megahertz f) const {
    return static_cast<double>(sp_count) * f.get() * 1e6;
  }

  /// Memory bandwidth in bytes/second at memory frequency `f`.
  [[nodiscard]] double mem_bandwidth(Megahertz f) const {
    return mem_bytes_per_clock * f.get() * 1e6;
  }
};

struct CpuSpec {
  /// Phenom II X2: two cores.
  int cores{2};
  /// Sustained "work ops" per cycle per core (superscalar issue).
  double ops_per_cycle{3.0};

  // --- Power model (meter 1 covers the whole box minus the GPU card):
  // P = board + static*(V/Vmax)^2 + sum_i dyn_per_core*(f/fmax)*(V/Vmax)^2*u_i
  /// Motherboard + disk + DRAM + PSU overhead measured by meter 1.
  Watts p_board{45.0};
  /// Package static/leakage power at peak voltage.
  Watts p_static{12.0};
  /// Dynamic power of one fully loaded core at fmax/Vmax.
  Watts p_dyn_per_core{30.0};

  /// Instantaneous CPU-side power.  `f_norm` = f/fmax, `v_norm` = V/Vmax,
  /// `util_sum` = sum of per-core utilizations in [0, cores].
  [[nodiscard]] Watts power(double f_norm, double v_norm, double util_sum) const {
    const double v2 = v_norm * v_norm;
    return p_board + p_static * v2 + p_dyn_per_core * (f_norm * v2 * util_sum);
  }

  /// Aggregate ops/second across all cores at frequency `f`.
  [[nodiscard]] double throughput(Megahertz f) const {
    return static_cast<double>(cores) * ops_per_cycle * f.get() * 1e6;
  }
};

/// PCIe-generation interconnect between host and GPU (system bus + DMA).
struct BusSpec {
  /// Sustained host<->device copy bandwidth, bytes/second (PCIe 1.1 x16).
  double bandwidth_bytes_per_s{3.0e9};
  /// Per-transfer setup latency.
  Seconds latency{15e-6};

  [[nodiscard]] Seconds transfer_time(double bytes) const {
    return latency + Seconds{bytes / bandwidth_bytes_per_s};
  }
};

}  // namespace gg::sim
