// Energy integration and Wattsup-style power metering.
//
// The paper measures energy with two Wattsup Pro wall-socket meters (1 Hz
// sampling).  Internally the simulator integrates power exactly over
// piecewise-constant intervals (every device state change advances the
// integrator); the `PowerMeter` additionally logs 1 Hz average-power samples
// so traces look like the meters' output.
#pragma once

#include <vector>

#include "src/common/snapshot.h"
#include "src/common/units.h"

namespace gg::sim {

/// Exact integrator for piecewise-constant power.  Call `advance(t, p)` with
/// the power that was drawn since the previous call.
class EnergyIntegrator {
 public:
  /// Integrate `power_since_last` over [last_time, now] and move to `now`.
  void advance(Seconds now, Watts power_since_last);

  [[nodiscard]] Joules energy() const { return energy_; }
  [[nodiscard]] Seconds last_time() const { return last_; }

  void reset(Seconds now) {
    last_ = now;
    energy_ = Joules{0.0};
  }

  /// Serialize the accumulated energy and the last accounting instant; a
  /// restored integrator continues the exact piecewise sum bit-for-bit.
  void save(common::SnapshotWriter& w) const {
    w.f64(last_.get());
    w.f64(energy_.get());
  }
  void load(common::SnapshotReader& r) {
    last_ = Seconds{r.f64()};
    energy_ = Joules{r.f64()};
  }

 private:
  Seconds last_{0.0};
  Joules energy_{0.0};
};

/// One averaged meter sample covering [t - interval, t].
struct MeterSample {
  Seconds time{0.0};
  Watts average_power{0.0};
};

/// Wall-socket style meter: exposes exact cumulative energy plus an optional
/// 1 Hz (configurable) averaged-power sample log.
class PowerMeter {
 public:
  explicit PowerMeter(Seconds sample_interval = Seconds{1.0})
      : sample_interval_(sample_interval) {}

  /// Integrate power over the elapsed interval; emits averaged samples for
  /// every full sampling period crossed.
  void advance(Seconds now, Watts power_since_last);

  [[nodiscard]] Joules energy() const { return integrator_.energy(); }
  [[nodiscard]] const std::vector<MeterSample>& samples() const { return samples_; }
  [[nodiscard]] Seconds sample_interval() const { return sample_interval_; }

  void reset(Seconds now);

 private:
  Seconds sample_interval_;
  EnergyIntegrator integrator_;
  // Sample bookkeeping: energy accumulated within the current sample window.
  Seconds window_start_{0.0};
  Joules window_energy_{0.0};
  std::vector<MeterSample> samples_;
};

}  // namespace gg::sim
