#include "src/sim/cpu_device.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace gg::sim {

namespace {
constexpr double kUnitEpsilon = 1e-9;

void validate(const CpuWork& w, int cores) {
  if (!(w.units > 0.0)) throw std::invalid_argument("CpuWork: units must be > 0");
  if (w.ops_per_unit < 0.0 || w.overhead_per_unit < Seconds{0.0}) {
    throw std::invalid_argument("CpuWork: negative work component");
  }
  if (w.ops_per_unit == 0.0 && w.overhead_per_unit == Seconds{0.0}) {
    throw std::invalid_argument("CpuWork: task with zero work");
  }
  if (w.active_cores < 0 || w.active_cores > cores) {
    throw std::invalid_argument("CpuWork: active_cores out of range");
  }
}
}  // namespace

CpuDevice::CpuDevice(EventQueue& queue, CpuSpec spec, DvfsTable table,
                     std::size_t initial_level)
    : queue_(queue), spec_(spec), domain_("cpu", std::move(table), initial_level),
      last_account_(queue.now()) {
  energy_.reset(queue.now());
}

CpuDevice CpuDevice::testbed_default(EventQueue& queue) {
  return CpuDevice{queue, CpuSpec{}, phenom2_table(), 0};
}

int CpuDevice::effective_cores(const CpuWork& w) const {
  return w.active_cores == 0 ? spec_.cores : w.active_cores;
}

Seconds CpuDevice::unit_time(const CpuWork& w) const {
  const double share = static_cast<double>(effective_cores(w)) / spec_.cores;
  const double rate = spec_.throughput(domain_.frequency()) * share;
  return w.overhead_per_unit + Seconds{w.ops_per_unit / rate};
}

Seconds CpuDevice::predict_duration(const CpuWork& work) const {
  validate(work, spec_.cores);
  return unit_time(work) * work.units;
}

double CpuDevice::utilization_now() const {
  if (active_) {
    return static_cast<double>(effective_cores(active_->work)) / spec_.cores;
  }
  if (spinning_) {
    // With the synchronous CUDA 3.2 stack the GPU-owner pthread busy-waits
    // and the idle OpenMP workers sit in active-wait barriers, so every core
    // reads 100 % — exactly the Section VII-A observation ("the CPU has a
    // utilization of 100% even when it is idling"), which defeats ondemand.
    return 1.0;
  }
  return 0.0;
}

Watts CpuDevice::power_now() const {
  const double f_norm = domain_.frequency() / domain_.table().peak();
  const double v_norm = domain_.voltage() / domain_.table().voltage(0);
  const double util_sum = utilization_now() * spec_.cores;
  return spec_.power(f_norm, v_norm, util_sum);
}

Watts CpuDevice::idle_power(std::size_t at_level) const {
  const double f_norm = domain_.table().frequency(at_level) / domain_.table().peak();
  const double v_norm = domain_.table().voltage(at_level) / domain_.table().voltage(0);
  return spec_.power(f_norm, v_norm, 0.0);
}

Watts CpuDevice::power_at(std::size_t at_level, double utilization) const {
  const double f_norm = domain_.table().frequency(at_level) / domain_.table().peak();
  const double v_norm = domain_.table().voltage(at_level) / domain_.table().voltage(0);
  return spec_.power(f_norm, v_norm, clamp_unit(utilization) * spec_.cores);
}

void CpuDevice::account() {
  const Seconds now = queue_.now();
  const Seconds dt = now - last_account_;
  if (dt <= Seconds{0.0}) {
    last_account_ = now;
    return;
  }
  const Watts p = power_now();
  energy_.advance(now, p);
  const double u = utilization_now();
  counters_.util_integral += u * dt.get();
  if (u > 0.0) counters_.busy_integral += dt.get();
  if (!active_ && spinning_) {
    counters_.spin_integral += dt.get();
    spin_energy_ += p * dt;
  }
  if (active_) active_->units_done += dt / unit_time(active_->work);
  last_account_ = now;
}

CpuActivityCounters CpuDevice::counters() {
  account();
  return counters_;
}

Joules CpuDevice::energy() {
  account();
  return energy_.energy();
}

Joules CpuDevice::spin_energy() {
  account();
  return spin_energy_;
}

void CpuDevice::submit(const CpuWork& work, CompletionCallback on_complete) {
  validate(work, spec_.cores);
  account();
  fifo_.push_back(Active{work, 0.0, std::move(on_complete)});
  start_next_if_idle();
}

void CpuDevice::set_spinning(bool spinning) {
  if (spinning == spinning_) return;
  account();
  spinning_ = spinning;
}

void CpuDevice::start_next_if_idle() {
  if (active_ || fifo_.empty()) return;
  account();
  active_ = std::move(fifo_.front());
  fifo_.pop_front();
  schedule_completion();
}

void CpuDevice::schedule_completion() {
  completion_.cancel();
  const double remaining = std::max(0.0, active_->work.units - active_->units_done);
  const Seconds eta = unit_time(active_->work) * remaining;
  completion_ = queue_.schedule_in(eta, [this] { on_completion_event(); });
}

void CpuDevice::on_completion_event() {
  account();
  // Drift guard, but only while the residual eta can still advance the
  // clock; a sub-ulp remainder would reschedule at the same instant forever
  // (see GpuDevice::on_completion_event).
  if (active_->units_done < active_->work.units - kUnitEpsilon * active_->work.units) {
    const double remaining = active_->work.units - active_->units_done;
    const Seconds eta = unit_time(active_->work) * remaining;
    if ((queue_.now() + eta).get() > queue_.now().get()) {
      schedule_completion();
      return;
    }
  }
  CompletionCallback cb = std::move(active_->on_complete);
  active_.reset();
  ++tasks_completed_;
  start_next_if_idle();
  if (cb) cb();
}

void CpuDevice::set_level(std::size_t level) {
  account();
  if (domain_.set_level(level) && active_) schedule_completion();
}

void CpuDevice::save(common::SnapshotWriter& w) {
  if (active_.has_value() || !fifo_.empty() || spinning_) {
    throw common::SnapshotError("CpuDevice::save: device not quiescent");
  }
  account();  // bring every integral up to queue.now() first
  domain_.save(w);
  w.f64(last_account_.get());
  w.f64(counters_.util_integral);
  w.f64(counters_.busy_integral);
  w.f64(counters_.spin_integral);
  energy_.save(w);
  w.f64(spin_energy_.get());
  w.u64(tasks_completed_);
}

void CpuDevice::load(common::SnapshotReader& r) {
  if (active_.has_value() || !fifo_.empty() || spinning_) {
    throw common::SnapshotError("CpuDevice::load: device not quiescent");
  }
  domain_.load(r);
  last_account_ = Seconds{r.f64()};
  counters_.util_integral = r.f64();
  counters_.busy_integral = r.f64();
  counters_.spin_integral = r.f64();
  energy_.load(r);
  spin_energy_ = Joules{r.f64()};
  tasks_completed_ = r.u64();
}

}  // namespace gg::sim
