// Deterministic fault injection for the simulated platform.
//
// Real testbeds are not the perfect platform the rest of `sim` models:
// `nvidia-smi` polls intermittently fail or return a stale window,
// `nvidia-settings` clock writes get rejected or silently clamped by the
// driver, kernel launches fail transiently under load, and thermal limits
// force the card to its lowest clock pair for seconds at a time.  The
// `FaultInjector` reproduces those failure modes as *seeded, deterministic*
// perturbations scheduled on the existing `EventQueue`, so the controllers
// above can be exercised — and hardened — against a flaky platform while
// every run stays bit-reproducible.
//
// The injector is consulted by the cudalite facades (`NvmlDevice`,
// `NvSettings`, the launch path); it never mutates controller state itself.
// The only state it drives directly is the thermal-throttle episode, which
// pins a GPU's clock domains to their lowest levels for a window and then
// restores the most recently *requested* levels — exactly how a driver
// recovers clocks after a thermal event.
//
// With every rate at zero (the default) the injector draws nothing and is a
// strict no-op; experiments that do not install one are untouched.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/sim/event_queue.h"

namespace gg::sim {

class GpuDevice;

/// Per-channel fault probabilities and episode parameters.  All rates are
/// per-operation probabilities in [0, 1]; durations are simulated seconds.
struct FaultConfig {
  std::uint64_t seed{0x5EEDFA517ULL};

  // NVML-style utilization reads.
  double util_drop_rate{0.0};     ///< Read returns a driver error.
  double util_stale_rate{0.0};    ///< Read repeats the previous window (zero-length window).
  double util_corrupt_rate{0.0};  ///< Read returns garbage percentages.

  // nvidia-settings-style clock writes.
  double clock_reject_rate{0.0};  ///< Write fails outright, clocks unchanged.
  double clock_delay_rate{0.0};   ///< Write lands only after `clock_delay`.
  Seconds clock_delay{0.5};
  double clock_clamp_rate{0.0};   ///< Write moves each domain one level toward the target only.

  // Kernel launches and host-side chunks.
  double launch_fail_rate{0.0};  ///< cudalite launch transiently rejected.
  double host_fail_rate{0.0};    ///< host chunk submission transiently rejected.

  // Thermal-throttle episodes: the card is pinned to its lowest clock pair
  // for `throttle_duration`, with exponentially distributed gaps of mean
  // `throttle_mtbf` between episode starts.  0 mtbf disables the channel.
  Seconds throttle_mtbf{0.0};
  Seconds throttle_duration{5.0};

  /// True when any channel can ever fire.
  [[nodiscard]] bool any_faults() const;

  /// Throws std::invalid_argument naming the offending field when a rate is
  /// outside [0, 1] or a duration is not positive where required.
  void validate() const;

  /// Convenience: set every probability channel to `rate` (throttle
  /// unchanged).
  [[nodiscard]] static FaultConfig uniform(double rate, std::uint64_t seed = 0x5EEDFA517ULL);

  /// Parse the shared --fault-* flag family (used identically by
  /// greengpu_cli and greengpud): --fault-seed, --fault-rate (uniform
  /// shorthand), per-channel rates, delay/throttle durations.  Calls
  /// validate(); throws std::invalid_argument naming the offending flag.
  [[nodiscard]] static FaultConfig from_flags(const Flags& flags);
};

/// Which platform surface a fault event belongs to.
enum class FaultChannel : std::uint8_t {
  kUtilRead,
  kClockWrite,
  kLaunch,
  kHostTask,
  kThermal,
  kHarness,  ///< retry / reroute / watchdog bookkeeping by hardened layers
  kSocket,   ///< service transport (greengpud's Unix socket)
};

/// What actually happened.
enum class FaultOutcome : std::uint8_t {
  // Injected faults.
  kUtilDropped,
  kUtilStale,
  kUtilCorrupted,
  kClockRejected,
  kClockDelayed,
  kClockClamped,
  kClockThrottled,
  kLaunchFailed,
  kHostTaskFailed,
  kThrottleStart,
  kThrottleEnd,
  // Reactions of the hardened layers (logged through note()).
  kRetrySucceeded,
  kRetriesExhausted,
  kRerouted,
  kForcedCompletion,
  kWatchdogTrip,
  kActuationFallback,
  // Socket-family faults (drawn by SocketFaultInjector on the transport).
  kSockShortWrite,
  kSockEintr,
  kSockEpipe,
  kSockShortRead,
  kSockDisconnect,
  kSockStall,
};

[[nodiscard]] std::string to_string(FaultChannel channel);
[[nodiscard]] std::string to_string(FaultOutcome outcome);

/// One entry of the injector's event log (for traces, records and tests).
struct FaultEvent {
  Seconds time{0.0};
  FaultChannel channel{FaultChannel::kUtilRead};
  FaultOutcome outcome{FaultOutcome::kUtilDropped};
  std::size_t device{0};
};

/// Fault drawn for one utilization read.
enum class UtilFault : std::uint8_t { kNone, kDrop, kStale, kCorrupt };

/// Fault drawn for one clock write.
enum class ClockFault : std::uint8_t { kNone, kReject, kDelay, kClamp };

/// Seeded fault source bound to the platform's event queue.  All draws
/// happen on the (single-threaded) simulation loop in a deterministic
/// order, so identical configurations yield identical fault schedules
/// regardless of host thread-pool size.
class FaultInjector {
 public:
  FaultInjector(EventQueue& queue, FaultConfig config);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  ~FaultInjector();

  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// Register a GPU for per-device channels and thermal episodes.  Devices
  /// must be added in index order before `start()`.
  void add_gpu(GpuDevice& gpu, std::size_t index);

  /// Begin scheduling thermal-throttle episodes (no-op when mtbf is 0).
  void start();
  /// Cancel pending episodes and restore throttled devices.
  void stop();

  // --- Channel draws (called by the cudalite facades) ----------------------
  [[nodiscard]] UtilFault draw_util_fault(std::size_t device);
  /// Garbage integer percentages for a corrupted read.
  [[nodiscard]] std::pair<unsigned, unsigned> corrupt_utilization(std::size_t device);
  [[nodiscard]] ClockFault draw_clock_fault(std::size_t device);
  [[nodiscard]] bool draw_launch_fail(std::size_t device);
  [[nodiscard]] bool draw_host_fail();

  // --- Thermal state --------------------------------------------------------
  /// True while `device` is inside a throttle episode (clock writes are
  /// pinned to the lowest pair for its duration).
  [[nodiscard]] bool throttled(std::size_t device) const;
  /// Record the levels a client *asked for* so an episode end restores the
  /// latest target rather than the pre-episode clocks.
  void note_requested_levels(std::size_t device, std::size_t core, std::size_t mem);

  /// Schedule `action` on the queue after `delay` (used for delayed clock
  /// writes so the facade does not need queue access of its own).
  EventHandle schedule_in(Seconds delay, EventQueue::Action action) {
    return queue_->schedule_in(delay, std::move(action));
  }

  // --- Event log ------------------------------------------------------------
  void note(FaultChannel channel, FaultOutcome outcome, std::size_t device = 0);
  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }

 private:
  struct GpuSlot {
    GpuDevice* gpu{nullptr};
    Rng util_rng;
    Rng clock_rng;
    Rng launch_rng;
    Rng throttle_rng;
    bool throttled{false};
    std::size_t requested_core{0};
    std::size_t requested_mem{0};
    EventHandle episode;
  };

  void schedule_next_episode(std::size_t device);
  void begin_episode(std::size_t device);
  void end_episode(std::size_t device);

  EventQueue* queue_;
  FaultConfig config_;
  Rng master_;
  Rng host_rng_;
  std::vector<GpuSlot> gpus_;
  std::vector<FaultEvent> events_;
  bool started_{false};
};

// --------------------------------------------------------------------------
// Socket-fault family (the service transport's chaos source)
// --------------------------------------------------------------------------

/// Per-syscall fault probabilities for the greengpud socket layer.  Unlike
/// FaultConfig these faults live on the *host* side of the simulation
/// boundary — they perturb how bytes move, never what the bytes say — so
/// they are deliberately excluded from ServiceConfig::fingerprint() and a
/// journal written under chaos resumes cleanly without it.
///
/// The write draw partitions one uniform sample across short-write / EINTR /
/// EPIPE / stall; the read draw across short-read / EINTR / disconnect, so
/// the per-direction rates must each sum to at most 1.
struct SocketFaultConfig {
  std::uint64_t seed{0x5EED50C7ULL};

  double short_write_rate{0.0};  ///< write accepts only part of the buffer
  double eintr_rate{0.0};        ///< read/write interrupted by a signal
  double epipe_rate{0.0};        ///< write finds the peer already gone
  double short_read_rate{0.0};   ///< read returns a truncated chunk
  double disconnect_rate{0.0};   ///< peer vanishes mid-frame on the read side
  double stall_rate{0.0};        ///< peer's receive window closes (EAGAIN)

  /// True when any channel can ever fire.
  [[nodiscard]] bool any_faults() const;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;

  /// Convenience: spread `rate` across every channel so each *direction*
  /// faults with total probability <= rate per syscall.
  [[nodiscard]] static SocketFaultConfig uniform(double rate,
                                                 std::uint64_t seed = 0x5EED50C7ULL);

  /// Parse the --socket-fault-* flag family (greengpud and the chaos
  /// harness): --socket-fault-seed, --socket-fault-rate (uniform shorthand),
  /// per-channel overrides.  Calls validate().
  [[nodiscard]] static SocketFaultConfig from_flags(const Flags& flags);
};

/// Fault drawn for one socket syscall.
enum class SocketFault : std::uint8_t {
  kNone,
  kShortWrite,
  kEintr,
  kEpipe,
  kShortRead,
  kDisconnect,
  kStall,
};

[[nodiscard]] std::string to_string(SocketFault fault);

/// Seeded fault source for the service socket layer.  Standalone (no
/// EventQueue: the transport has no simulated time) but deterministic: the
/// draw sequence is a pure function of (seed, syscall order), and separate
/// read/write streams keep the two directions independent.
class SocketFaultInjector {
 public:
  explicit SocketFaultInjector(SocketFaultConfig config);

  [[nodiscard]] const SocketFaultConfig& config() const { return config_; }

  /// One draw for a write of `size` bytes.  On kShortWrite, `allowed` is
  /// truncated to the injected partial length; otherwise it is `size`.
  [[nodiscard]] SocketFault draw_write(std::size_t size, std::size_t& allowed);

  /// One draw for a read of up to `size` bytes (same contract).
  [[nodiscard]] SocketFault draw_read(std::size_t size, std::size_t& allowed);

  /// Times `fault` has been drawn (kNone counts clean syscalls).
  [[nodiscard]] std::uint64_t count(SocketFault fault) const;
  /// Total injected faults (every draw except kNone).
  [[nodiscard]] std::uint64_t injected() const;

 private:
  void bump(SocketFault fault);

  SocketFaultConfig config_;
  Rng write_rng_;
  Rng read_rng_;
  std::array<std::uint64_t, 7> counts_{};
};

}  // namespace gg::sim
