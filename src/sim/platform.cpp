#include "src/sim/platform.h"

#include <stdexcept>
#include <utility>

namespace gg::sim {

Platform::Platform(std::size_t gpu_count) {
  if (gpu_count == 0) throw std::invalid_argument("Platform: need at least one GPU");
  for (std::size_t i = 0; i < gpu_count; ++i) {
    DvfsTable core = geforce8800_core_table();
    DvfsTable mem = geforce8800_memory_table();
    const std::size_t core_low = core.lowest_level();
    const std::size_t mem_low = mem.lowest_level();
    gpus_.push_back(std::make_unique<GpuDevice>(queue_, GpuSpec{}, std::move(core),
                                                std::move(mem), core_low, mem_low));
  }
  for (auto& gpu : gpus_) {
    copy_engines_.push_back(std::make_unique<CopyEngine>(queue_, bus_, *gpu));
  }
  cpu_ = std::make_unique<CpuDevice>(queue_, CpuSpec{}, phenom2_table(), 0);
}

Platform::Platform(GpuSpec gpu_spec, DvfsTable gpu_core, DvfsTable gpu_mem,
                   std::size_t gpu_core_level, std::size_t gpu_mem_level, CpuSpec cpu_spec,
                   DvfsTable cpu_table, std::size_t cpu_level, BusSpec bus,
                   std::size_t gpu_count)
    : bus_(bus) {
  if (gpu_count == 0) throw std::invalid_argument("Platform: need at least one GPU");
  for (std::size_t i = 0; i < gpu_count; ++i) {
    gpus_.push_back(std::make_unique<GpuDevice>(queue_, gpu_spec, gpu_core, gpu_mem,
                                                gpu_core_level, gpu_mem_level));
  }
  for (auto& gpu : gpus_) {
    copy_engines_.push_back(std::make_unique<CopyEngine>(queue_, bus_, *gpu));
  }
  cpu_ = std::make_unique<CpuDevice>(queue_, cpu_spec, std::move(cpu_table), cpu_level);
}

EnergySnapshot Platform::snapshot() {
  EnergySnapshot s;
  s.time = queue_.now();
  s.per_gpu.reserve(gpus_.size());
  for (auto& gpu : gpus_) {
    const Joules e = gpu->energy();
    s.per_gpu.push_back(e);
    s.gpu += e;
  }
  s.cpu = cpu_->energy();
  return s;
}

EnergyDelta Platform::delta(const EnergySnapshot& a, const EnergySnapshot& b) {
  return EnergyDelta{b.time - a.time, b.gpu - a.gpu, b.cpu - a.cpu};
}

Watts Platform::idle_power_at_peak() {
  Watts p = cpu_->idle_power(0);
  for (auto& gpu : gpus_) p += gpu->idle_power(0, 0);
  return p;
}

FaultInjector& Platform::install_faults(const FaultConfig& config) {
  faults_ = std::make_unique<FaultInjector>(queue_, config);
  for (std::size_t i = 0; i < gpus_.size(); ++i) faults_->add_gpu(*gpus_[i], i);
  faults_->start();
  return *faults_;
}

void Platform::save(common::SnapshotWriter& w) {
  if (faults_ != nullptr) {
    throw common::SnapshotError("Platform::save: fault injector already installed");
  }
  queue_.save(w);
  w.u64(gpus_.size());
  for (auto& gpu : gpus_) gpu->save(w);
  cpu_->save(w);
  for (auto& engine : copy_engines_) engine->save(w);
}

void Platform::load(common::SnapshotReader& r) {
  if (faults_ != nullptr) {
    throw common::SnapshotError("Platform::load: fault injector already installed");
  }
  queue_.load(r);
  const std::uint64_t count = r.u64();
  if (count != gpus_.size()) {
    throw common::SnapshotError("Platform::load: GPU count mismatch");
  }
  for (auto& gpu : gpus_) gpu->load(r);
  cpu_->load(r);
  for (auto& engine : copy_engines_) engine->load(r);
}

}  // namespace gg::sim
