#include "src/sim/fault.h"

#include <cmath>
#include <stdexcept>

#include "src/sim/gpu_device.h"

namespace gg::sim {

namespace {

void check_rate_in(const char* type, double rate, const char* field) {
  if (!(rate >= 0.0 && rate <= 1.0)) {
    throw std::invalid_argument(std::string(type) + ": " + field +
                                " must be in [0, 1], got " + std::to_string(rate));
  }
}

void check_rate(double rate, const char* field) {
  check_rate_in("FaultConfig", rate, field);
}

void check_sock_rate(double rate, const char* field) {
  check_rate_in("SocketFaultConfig", rate, field);
}

}  // namespace

bool FaultConfig::any_faults() const {
  return util_drop_rate > 0.0 || util_stale_rate > 0.0 || util_corrupt_rate > 0.0 ||
         clock_reject_rate > 0.0 || clock_delay_rate > 0.0 || clock_clamp_rate > 0.0 ||
         launch_fail_rate > 0.0 || host_fail_rate > 0.0 || throttle_mtbf > Seconds{0.0};
}

void FaultConfig::validate() const {
  check_rate(util_drop_rate, "util_drop_rate");
  check_rate(util_stale_rate, "util_stale_rate");
  check_rate(util_corrupt_rate, "util_corrupt_rate");
  check_rate(clock_reject_rate, "clock_reject_rate");
  check_rate(clock_delay_rate, "clock_delay_rate");
  check_rate(clock_clamp_rate, "clock_clamp_rate");
  check_rate(launch_fail_rate, "launch_fail_rate");
  check_rate(host_fail_rate, "host_fail_rate");
  if (util_drop_rate + util_stale_rate + util_corrupt_rate > 1.0) {
    throw std::invalid_argument(
        "FaultConfig: util drop+stale+corrupt rates must sum to at most 1");
  }
  if (clock_reject_rate + clock_delay_rate + clock_clamp_rate > 1.0) {
    throw std::invalid_argument(
        "FaultConfig: clock reject+delay+clamp rates must sum to at most 1");
  }
  if (clock_delay_rate > 0.0 && clock_delay <= Seconds{0.0}) {
    throw std::invalid_argument(
        "FaultConfig: clock_delay must be > 0 when clock_delay_rate > 0");
  }
  if (throttle_mtbf < Seconds{0.0}) {
    throw std::invalid_argument("FaultConfig: throttle_mtbf must be >= 0");
  }
  if (throttle_mtbf > Seconds{0.0} && throttle_duration <= Seconds{0.0}) {
    throw std::invalid_argument(
        "FaultConfig: throttle_duration must be > 0 when throttling is enabled");
  }
}

FaultConfig FaultConfig::uniform(double rate, std::uint64_t seed) {
  check_rate(rate, "uniform rate");
  FaultConfig c;
  c.seed = seed;
  // Partitioned channels share one draw, so give each an equal slice.
  c.util_drop_rate = rate / 3.0;
  c.util_stale_rate = rate / 3.0;
  c.util_corrupt_rate = rate / 3.0;
  c.clock_reject_rate = rate / 3.0;
  c.clock_delay_rate = rate / 3.0;
  c.clock_clamp_rate = rate / 3.0;
  c.launch_fail_rate = rate;
  c.host_fail_rate = rate;
  return c;
}

FaultConfig FaultConfig::from_flags(const Flags& flags) {
  FaultConfig cfg;
  const auto seed = static_cast<std::uint64_t>(
      flags.get_int("fault-seed", static_cast<long long>(cfg.seed)));
  if (flags.has("fault-rate")) {
    cfg = uniform(flags.get_double("fault-rate", 0.0), seed);
  }
  cfg.seed = seed;
  cfg.util_drop_rate = flags.get_double("fault-util-drop", cfg.util_drop_rate);
  cfg.util_stale_rate = flags.get_double("fault-util-stale", cfg.util_stale_rate);
  cfg.util_corrupt_rate = flags.get_double("fault-util-corrupt", cfg.util_corrupt_rate);
  cfg.clock_reject_rate = flags.get_double("fault-clock-reject", cfg.clock_reject_rate);
  cfg.clock_delay_rate = flags.get_double("fault-clock-delay", cfg.clock_delay_rate);
  cfg.clock_delay =
      Seconds{flags.get_double("fault-clock-delay-s", cfg.clock_delay.get())};
  cfg.clock_clamp_rate = flags.get_double("fault-clock-clamp", cfg.clock_clamp_rate);
  cfg.launch_fail_rate = flags.get_double("fault-launch", cfg.launch_fail_rate);
  cfg.host_fail_rate = flags.get_double("fault-host", cfg.host_fail_rate);
  cfg.throttle_mtbf =
      Seconds{flags.get_double("fault-throttle-mtbf", cfg.throttle_mtbf.get())};
  cfg.throttle_duration =
      Seconds{flags.get_double("fault-throttle-duration", cfg.throttle_duration.get())};
  // Throws std::invalid_argument naming the offending field; main() prints it.
  cfg.validate();
  return cfg;
}

std::string to_string(FaultChannel channel) {
  switch (channel) {
    case FaultChannel::kUtilRead: return "util-read";
    case FaultChannel::kClockWrite: return "clock-write";
    case FaultChannel::kLaunch: return "launch";
    case FaultChannel::kHostTask: return "host-task";
    case FaultChannel::kThermal: return "thermal";
    case FaultChannel::kHarness: return "harness";
    case FaultChannel::kSocket: return "socket";
  }
  return "unknown";
}

std::string to_string(FaultOutcome outcome) {
  switch (outcome) {
    case FaultOutcome::kUtilDropped: return "util-dropped";
    case FaultOutcome::kUtilStale: return "util-stale";
    case FaultOutcome::kUtilCorrupted: return "util-corrupted";
    case FaultOutcome::kClockRejected: return "clock-rejected";
    case FaultOutcome::kClockDelayed: return "clock-delayed";
    case FaultOutcome::kClockClamped: return "clock-clamped";
    case FaultOutcome::kClockThrottled: return "clock-throttled";
    case FaultOutcome::kLaunchFailed: return "launch-failed";
    case FaultOutcome::kHostTaskFailed: return "host-task-failed";
    case FaultOutcome::kThrottleStart: return "throttle-start";
    case FaultOutcome::kThrottleEnd: return "throttle-end";
    case FaultOutcome::kRetrySucceeded: return "retry-succeeded";
    case FaultOutcome::kRetriesExhausted: return "retries-exhausted";
    case FaultOutcome::kRerouted: return "rerouted";
    case FaultOutcome::kForcedCompletion: return "forced-completion";
    case FaultOutcome::kWatchdogTrip: return "watchdog-trip";
    case FaultOutcome::kActuationFallback: return "actuation-fallback";
    case FaultOutcome::kSockShortWrite: return "sock-short-write";
    case FaultOutcome::kSockEintr: return "sock-eintr";
    case FaultOutcome::kSockEpipe: return "sock-epipe";
    case FaultOutcome::kSockShortRead: return "sock-short-read";
    case FaultOutcome::kSockDisconnect: return "sock-disconnect";
    case FaultOutcome::kSockStall: return "sock-stall";
  }
  return "unknown";
}

bool SocketFaultConfig::any_faults() const {
  return short_write_rate > 0.0 || eintr_rate > 0.0 || epipe_rate > 0.0 ||
         short_read_rate > 0.0 || disconnect_rate > 0.0 || stall_rate > 0.0;
}

void SocketFaultConfig::validate() const {
  check_sock_rate(short_write_rate, "short_write_rate");
  check_sock_rate(eintr_rate, "eintr_rate");
  check_sock_rate(epipe_rate, "epipe_rate");
  check_sock_rate(short_read_rate, "short_read_rate");
  check_sock_rate(disconnect_rate, "disconnect_rate");
  check_sock_rate(stall_rate, "stall_rate");
  if (short_write_rate + eintr_rate + epipe_rate + stall_rate > 1.0) {
    throw std::invalid_argument(
        "SocketFaultConfig: write-side rates (short_write+eintr+epipe+stall) "
        "must sum to at most 1");
  }
  if (short_read_rate + eintr_rate + disconnect_rate > 1.0) {
    throw std::invalid_argument(
        "SocketFaultConfig: read-side rates (short_read+eintr+disconnect) "
        "must sum to at most 1");
  }
}

SocketFaultConfig SocketFaultConfig::uniform(double rate, std::uint64_t seed) {
  check_sock_rate(rate, "uniform rate");
  SocketFaultConfig c;
  c.seed = seed;
  // The write draw partitions across four channels, the read draw across
  // three (sharing eintr_rate), so rate/4 keeps both direction sums <= rate.
  c.short_write_rate = rate / 4.0;
  c.eintr_rate = rate / 4.0;
  c.epipe_rate = rate / 4.0;
  c.stall_rate = rate / 4.0;
  c.short_read_rate = rate / 4.0;
  c.disconnect_rate = rate / 4.0;
  return c;
}

SocketFaultConfig SocketFaultConfig::from_flags(const Flags& flags) {
  SocketFaultConfig cfg;
  const auto seed = static_cast<std::uint64_t>(
      flags.get_int("socket-fault-seed", static_cast<long long>(cfg.seed)));
  if (flags.has("socket-fault-rate")) {
    cfg = uniform(flags.get_double("socket-fault-rate", 0.0), seed);
  }
  cfg.seed = seed;
  cfg.short_write_rate =
      flags.get_double("socket-fault-short-write", cfg.short_write_rate);
  cfg.eintr_rate = flags.get_double("socket-fault-eintr", cfg.eintr_rate);
  cfg.epipe_rate = flags.get_double("socket-fault-epipe", cfg.epipe_rate);
  cfg.short_read_rate =
      flags.get_double("socket-fault-short-read", cfg.short_read_rate);
  cfg.disconnect_rate =
      flags.get_double("socket-fault-disconnect", cfg.disconnect_rate);
  cfg.stall_rate = flags.get_double("socket-fault-stall", cfg.stall_rate);
  cfg.validate();
  return cfg;
}

std::string to_string(SocketFault fault) {
  switch (fault) {
    case SocketFault::kNone: return "none";
    case SocketFault::kShortWrite: return "short-write";
    case SocketFault::kEintr: return "eintr";
    case SocketFault::kEpipe: return "epipe";
    case SocketFault::kShortRead: return "short-read";
    case SocketFault::kDisconnect: return "disconnect";
    case SocketFault::kStall: return "stall";
  }
  return "unknown";
}

SocketFaultInjector::SocketFaultInjector(SocketFaultConfig config)
    : config_(config) {
  config_.validate();
  Rng master(config_.seed);
  write_rng_ = master.fork();
  read_rng_ = master.fork();
}

void SocketFaultInjector::bump(SocketFault fault) {
  ++counts_[static_cast<std::size_t>(fault)];
}

SocketFault SocketFaultInjector::draw_write(std::size_t size,
                                            std::size_t& allowed) {
  allowed = size;
  if (!config_.any_faults()) return SocketFault::kNone;
  const double r = write_rng_.uniform();
  double band = config_.short_write_rate;
  if (r < band && size > 1) {
    // At least one byte goes through: a short write is progress, not a stall.
    allowed = 1 + static_cast<std::size_t>(
                      write_rng_.uniform_int(static_cast<std::uint64_t>(size - 1)));
    bump(SocketFault::kShortWrite);
    return SocketFault::kShortWrite;
  }
  band = config_.short_write_rate + config_.eintr_rate;
  if (r < band) {
    bump(SocketFault::kEintr);
    return SocketFault::kEintr;
  }
  band += config_.epipe_rate;
  if (r < band) {
    bump(SocketFault::kEpipe);
    return SocketFault::kEpipe;
  }
  band += config_.stall_rate;
  if (r < band) {
    bump(SocketFault::kStall);
    return SocketFault::kStall;
  }
  bump(SocketFault::kNone);
  return SocketFault::kNone;
}

SocketFault SocketFaultInjector::draw_read(std::size_t size,
                                           std::size_t& allowed) {
  allowed = size;
  if (!config_.any_faults()) return SocketFault::kNone;
  const double r = read_rng_.uniform();
  double band = config_.short_read_rate;
  if (r < band && size > 1) {
    allowed = 1 + static_cast<std::size_t>(
                      read_rng_.uniform_int(static_cast<std::uint64_t>(size - 1)));
    bump(SocketFault::kShortRead);
    return SocketFault::kShortRead;
  }
  band = config_.short_read_rate + config_.eintr_rate;
  if (r < band) {
    bump(SocketFault::kEintr);
    return SocketFault::kEintr;
  }
  band += config_.disconnect_rate;
  if (r < band) {
    bump(SocketFault::kDisconnect);
    return SocketFault::kDisconnect;
  }
  bump(SocketFault::kNone);
  return SocketFault::kNone;
}

std::uint64_t SocketFaultInjector::count(SocketFault fault) const {
  return counts_[static_cast<std::size_t>(fault)];
}

std::uint64_t SocketFaultInjector::injected() const {
  std::uint64_t total = 0;
  for (std::size_t i = 1; i < counts_.size(); ++i) total += counts_[i];
  return total;
}

FaultInjector::FaultInjector(EventQueue& queue, FaultConfig config)
    : queue_(&queue), config_(config), master_(config.seed), host_rng_(master_.fork()) {
  config_.validate();
}

FaultInjector::~FaultInjector() { stop(); }

void FaultInjector::add_gpu(GpuDevice& gpu, std::size_t index) {
  if (started_) throw std::logic_error("FaultInjector: add_gpu after start");
  if (index != gpus_.size()) {
    throw std::invalid_argument("FaultInjector: GPUs must be added in index order");
  }
  GpuSlot slot;
  slot.gpu = &gpu;
  slot.util_rng = master_.fork();
  slot.clock_rng = master_.fork();
  slot.launch_rng = master_.fork();
  slot.throttle_rng = master_.fork();
  slot.requested_core = gpu.core_level();
  slot.requested_mem = gpu.mem_level();
  gpus_.push_back(std::move(slot));
}

void FaultInjector::start() {
  if (started_) return;
  started_ = true;
  if (config_.throttle_mtbf <= Seconds{0.0}) return;
  for (std::size_t d = 0; d < gpus_.size(); ++d) schedule_next_episode(d);
}

void FaultInjector::stop() {
  for (std::size_t d = 0; d < gpus_.size(); ++d) {
    gpus_[d].episode.cancel();
    if (gpus_[d].throttled) end_episode(d);
  }
  started_ = false;
}

void FaultInjector::schedule_next_episode(std::size_t device) {
  GpuSlot& slot = gpus_[device];
  // Exponentially distributed gap with mean mtbf (memoryless arrivals, the
  // standard thermal-event model); u < 1 so the log is finite.
  const double u = slot.throttle_rng.uniform();
  const Seconds gap{-config_.throttle_mtbf.get() * std::log1p(-u)};
  slot.episode = queue_->schedule_in(gap, [this, device] { begin_episode(device); });
}

void FaultInjector::begin_episode(std::size_t device) {
  GpuSlot& slot = gpus_[device];
  slot.throttled = true;
  note(FaultChannel::kThermal, FaultOutcome::kThrottleStart, device);
  slot.gpu->set_core_level(slot.gpu->core_table().lowest_level());
  slot.gpu->set_mem_level(slot.gpu->mem_table().lowest_level());
  slot.episode = queue_->schedule_in(config_.throttle_duration, [this, device] {
    end_episode(device);
    schedule_next_episode(device);
  });
}

void FaultInjector::end_episode(std::size_t device) {
  GpuSlot& slot = gpus_[device];
  slot.throttled = false;
  // The driver restores the most recently requested clocks, not the
  // pre-episode ones: a write that arrived mid-episode wins.
  slot.gpu->set_core_level(slot.requested_core);
  slot.gpu->set_mem_level(slot.requested_mem);
  note(FaultChannel::kThermal, FaultOutcome::kThrottleEnd, device);
}

UtilFault FaultInjector::draw_util_fault(std::size_t device) {
  GpuSlot& slot = gpus_.at(device);
  const double r = slot.util_rng.uniform();
  if (r < config_.util_drop_rate) return UtilFault::kDrop;
  if (r < config_.util_drop_rate + config_.util_stale_rate) return UtilFault::kStale;
  if (r < config_.util_drop_rate + config_.util_stale_rate + config_.util_corrupt_rate) {
    return UtilFault::kCorrupt;
  }
  return UtilFault::kNone;
}

std::pair<unsigned, unsigned> FaultInjector::corrupt_utilization(std::size_t device) {
  GpuSlot& slot = gpus_.at(device);
  return {static_cast<unsigned>(slot.util_rng.uniform_int(101)),
          static_cast<unsigned>(slot.util_rng.uniform_int(101))};
}

ClockFault FaultInjector::draw_clock_fault(std::size_t device) {
  GpuSlot& slot = gpus_.at(device);
  const double r = slot.clock_rng.uniform();
  if (r < config_.clock_reject_rate) return ClockFault::kReject;
  if (r < config_.clock_reject_rate + config_.clock_delay_rate) return ClockFault::kDelay;
  if (r < config_.clock_reject_rate + config_.clock_delay_rate + config_.clock_clamp_rate) {
    return ClockFault::kClamp;
  }
  return ClockFault::kNone;
}

bool FaultInjector::draw_launch_fail(std::size_t device) {
  if (config_.launch_fail_rate <= 0.0) return false;
  return gpus_.at(device).launch_rng.uniform() < config_.launch_fail_rate;
}

bool FaultInjector::draw_host_fail() {
  if (config_.host_fail_rate <= 0.0) return false;
  return host_rng_.uniform() < config_.host_fail_rate;
}

bool FaultInjector::throttled(std::size_t device) const {
  return device < gpus_.size() && gpus_[device].throttled;
}

void FaultInjector::note_requested_levels(std::size_t device, std::size_t core,
                                          std::size_t mem) {
  GpuSlot& slot = gpus_.at(device);
  slot.requested_core = core;
  slot.requested_mem = mem;
}

void FaultInjector::note(FaultChannel channel, FaultOutcome outcome, std::size_t device) {
  // GG_LINT_ALLOW(hot-alloc-transitive): the fault-event log grows only when
  // an injected fault, throttle or watchdog trip actually fires; the
  // no-fault fast path through the observation helpers never reaches this
  // push_back, so hot callers (step_fast, actuate) stay allocation-free.
  events_.push_back(FaultEvent{queue_->now(), channel, outcome, device});
}

}  // namespace gg::sim
